//! The interned path arena — the shared, deduplicated path substrate.
//!
//! Every path-consuming stage of the system (S4/S5 top-down inference,
//! the two path-observed cone definitions, valley-free grading, the
//! audit) needs the same three things from [`SanitizedPaths`]: the
//! *distinct* paths, a dense-id encoding of their hops, and — for the
//! rank-ordered S5 walk — an inverted index from AS to the paths that
//! contain it. Before this module each consumer rebuilt those views
//! independently (a `HashSet<&AsPath>` + clone here, an interner +
//! `Vec<Vec<u32>>` sort there), so the pipeline paid for parsing,
//! hashing, and deduplicating the same paths several times over.
//!
//! [`PathArena`] performs that work exactly once:
//!
//! * **Dedup by sort.** Sample indices are sorted by their `Asn` hop
//!   slices and collapsed into runs; each run becomes one distinct path
//!   with a **multiplicity** count. Because the bulk [`AsnInterner`]
//!   assigns ids in ascending ASN order, lexicographic order of id
//!   slices equals lexicographic order of ASN slices — the arena's path
//!   order is *identical* to the old `sort_by(|a, b| a.0.cmp(&b.0))`
//!   over cloned `AsPath`s, so downstream traversal order (and hence
//!   every inference) is bit-for-bit unchanged.
//! * **CSR flattening.** Distinct paths live in one `offsets`/`ids`
//!   arena of dense `u32` ids: path `p` is `ids[offsets[p]..offsets[p+1]]`.
//!   No per-path heap allocation survives the build.
//! * **Inverted index.** A counting sort over the flat `ids` produces,
//!   for every dense id, the `(path, position)` occurrences packed into
//!   one `u64` each — ascending by path then position, matching the
//!   insertion order of the hash-map index it replaces.
//!
//! The id-mapping pass fans out over worker threads ([`crate::par`]) in
//! contiguous path ranges reassembled in range order, so the arena is
//! bit-identical for every thread count.

use crate::par;
use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;

/// Deduplicated, interned, CSR-flattened view of a sanitized path set.
///
/// See the [module docs](self) for the layout. Construct with
/// [`PathArena::build`] / [`PathArena::build_with`] (or
/// [`PathArena::from_raw`] for audit fixtures), then hand shared
/// references to every consumer — the arena is immutable.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    /// Dense ids over every AS appearing in a distinct path; ids ascend
    /// with ASN.
    interner: AsnInterner,
    /// Path `p` spans `ids[offsets[p] as usize..offsets[p + 1] as usize]`.
    offsets: Vec<u32>,
    /// Hop ids of all distinct paths, concatenated in sorted path order.
    ids: Vec<u32>,
    /// Number of sanitized samples collapsed into each distinct path
    /// (≥ 1): the evidence weight dedup would otherwise discard.
    multiplicity: Vec<u32>,
    /// Occurrences of id `a` span
    /// `inv_entries[inv_offsets[a]..inv_offsets[a + 1]]`.
    inv_offsets: Vec<u32>,
    /// `(path << 32) | position`, ascending within each id's span.
    inv_entries: Vec<u64>,
}

impl PathArena {
    /// Build the arena from sanitized paths with the default thread
    /// budget.
    pub fn build(sanitized: &SanitizedPaths) -> Self {
        Self::build_with(sanitized, Parallelism::auto())
    }

    /// [`PathArena::build`] with an explicit thread budget. The result
    /// is bit-identical for every `par` value.
    pub fn build_with(sanitized: &SanitizedPaths, par: Parallelism) -> Self {
        let samples = &sanitized.samples;

        // Flatten every sample's raw hops into one contiguous buffer so
        // the dedup sort compares cache-local u32 slices instead of
        // chasing pointers into per-sample `Vec<Asn>` allocations.
        let total_raw: usize = samples.iter().map(|s| s.path.len()).sum();
        let mut tmp_offsets: Vec<u32> = Vec::with_capacity(samples.len() + 1);
        tmp_offsets.push(0);
        let mut tmp_hops: Vec<u32> = Vec::with_capacity(total_raw);
        for s in samples {
            tmp_hops.extend(s.path.iter().map(|a| a.0));
            tmp_offsets.push(dense_id(tmp_hops.len()));
        }
        let hops_of = |i: u32| {
            &tmp_hops[tmp_offsets[i as usize] as usize..tmp_offsets[i as usize + 1] as usize]
        };

        // Sort sample indices by hop content; equal runs collapse into
        // one distinct path with a multiplicity count. A packed
        // (hop0, hop1) prefix key resolves almost every comparison in
        // registers — sanitized paths have ≥ 2 hops, and packed-u64
        // order equals lexicographic (hop0, hop1) order. sort_unstable
        // is deterministic (pattern-defeating quicksort, no randomness);
        // fully equal keys reference identical hop slices, so which
        // sample represents a run cannot matter.
        let prefix_key = |h: &[u32]| -> u64 {
            let h0 = h.first().copied().unwrap_or(0) as u64;
            let h1 = h.get(1).copied().unwrap_or(0) as u64;
            h0 << 32 | h1
        };
        let mut order: Vec<(u64, u32)> = (0..dense_id(samples.len()))
            .map(|i| (prefix_key(hops_of(i)), i))
            .collect();
        order.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| hops_of(a.1).cmp(hops_of(b.1)))
        });

        // Counting pre-pass: a sample starts a new run exactly when its
        // prefix key or hop slice differs from its predecessor's (equal
        // runs are contiguous after the sort, and the key comparison
        // short-circuits almost every slice compare). Knowing the
        // distinct-path and total-hop counts up front lets every buffer
        // below be allocated once at its exact final size — the build
        // used to grow reps/multiplicity by doubling and pay a second
        // copy of `ids` through per-chunk Vecs + `concat`.
        let new_run = |w: usize| -> bool {
            w == 0
                || order[w - 1].0 != order[w].0
                || hops_of(order[w - 1].1) != hops_of(order[w].1)
        };
        let mut distinct = 0usize;
        let mut total = 0usize;
        for w in 0..order.len() {
            if new_run(w) {
                distinct += 1;
                total += hops_of(order[w].1).len();
            }
        }

        let mut reps: Vec<u32> = Vec::with_capacity(distinct);
        let mut multiplicity: Vec<u32> = Vec::with_capacity(distinct);
        let mut offsets: Vec<u32> = Vec::with_capacity(distinct + 1);
        offsets.push(0);
        let mut hop_cursor = 0usize;
        for w in 0..order.len() {
            if new_run(w) {
                reps.push(order[w].1);
                multiplicity.push(1);
                hop_cursor += hops_of(order[w].1).len();
                offsets.push(dense_id(hop_cursor));
            } else if let Some(m) = multiplicity.last_mut() {
                *m += 1;
            }
        }
        debug_assert_eq!(reps.len(), distinct);
        debug_assert_eq!(hop_cursor, total);

        // Ids ascend with ASN (bulk interner) — the property the whole
        // determinism story above rests on.
        let interner = AsnInterner::from_ases(
            reps.iter()
                .flat_map(|&si| hops_of(si).iter().map(|&v| Asn(v))),
        );

        // Map hops to dense ids over contiguous path ranges in parallel,
        // each range writing its offset-table span of `ids` in place.
        let mut ids: Vec<u32> = vec![0; total];
        par::fill_ranges(
            par,
            256,
            reps.len(),
            &mut ids,
            |range| (offsets[range.end] - offsets[range.start]) as usize,
            |range, span| {
                let mut w = 0usize;
                for d in range {
                    for &v in hops_of(reps[d]) {
                        // lint: allow(panics, interner seeded from these same distinct paths covers every hop)
                        span[w] = interner.get(Asn(v)).expect("interned");
                        w += 1;
                    }
                }
            },
        );

        let (inv_offsets, inv_entries) = invert(&offsets, &ids, interner.len());
        PathArena {
            interner,
            offsets,
            ids,
            multiplicity,
            inv_offsets,
            inv_entries,
        }
    }

    /// Assemble an arena from raw parts **without** establishing the
    /// invariants — the corruption-fixture entry point for the audit
    /// tests. The inverted index is built only when the base invariants
    /// hold (a corrupt arena keeps an empty index so [`PathArena::validate`]
    /// can report the underlying problems instead of panicking).
    pub fn from_raw(
        interner: AsnInterner,
        offsets: Vec<u32>,
        ids: Vec<u32>,
        multiplicity: Vec<u32>,
    ) -> Self {
        let mut arena = PathArena {
            interner,
            offsets,
            ids,
            multiplicity,
            inv_offsets: Vec::new(),
            inv_entries: Vec::new(),
        };
        if arena.base_problems().is_empty() {
            let (io, ie) = invert(&arena.offsets, &arena.ids, arena.interner.len());
            arena.inv_offsets = io;
            arena.inv_entries = ie;
        }
        arena
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.multiplicity.len()
    }

    /// True when the arena holds no paths.
    pub fn is_empty(&self) -> bool {
        self.multiplicity.is_empty()
    }

    /// Total hops across all distinct paths.
    pub fn total_hops(&self) -> usize {
        self.ids.len()
    }

    /// Number of distinct ASes appearing in the paths.
    pub fn num_ases(&self) -> usize {
        self.interner.len()
    }

    /// The dense-id interner (ids ascend with ASN).
    pub fn interner(&self) -> &AsnInterner {
        &self.interner
    }

    /// Hop ids of distinct path `p` (VP first, origin last).
    pub fn path(&self, p: usize) -> &[u32] {
        &self.ids[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// How many sanitized samples collapsed into distinct path `p`.
    pub fn multiplicity(&self, p: usize) -> u32 {
        self.multiplicity[p]
    }

    /// The raw CSR offsets (`len() + 1` entries, monotone).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat hop-id array.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Occurrences of dense id `a` as `(path, position)` pairs,
    /// ascending by path then position. `a` must be `< num_ases()`.
    pub fn occurrences(&self, a: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.inv_offsets[a as usize] as usize;
        let hi = self.inv_offsets[a as usize + 1] as usize;
        self.inv_entries[lo..hi]
            .iter()
            .map(|&e| ((e >> 32) as u32, e as u32))
    }

    /// Resolve distinct path `p` back to an [`AsPath`].
    pub fn resolve_path(&self, p: usize) -> AsPath {
        AsPath(self.path(p).iter().map(|&id| self.interner.resolve(id)).collect())
    }

    /// All distinct paths as owned [`AsPath`]s, in arena (ASN-lexicographic)
    /// order — the exact set and order the pipeline's old
    /// `HashSet<&AsPath>` + clone + sort produced.
    pub fn distinct_aspaths(&self) -> Vec<AsPath> {
        (0..self.len()).map(|p| self.resolve_path(p)).collect()
    }

    /// Violations of the base layout invariants: offsets monotone and
    /// terminated by `ids.len()`, every id in range, every multiplicity
    /// ≥ 1, and paths strictly ascending (sorted + actually distinct).
    fn base_problems(&self) -> Vec<String> {
        let mut problems: Vec<String> = Vec::new();
        let np = self.multiplicity.len();
        if self.offsets.len() != np + 1 {
            problems.push(format!(
                "offsets has {} entries for {np} path(s); expected {}",
                self.offsets.len(),
                np + 1
            ));
            return problems; // layout unusable; nothing below is safe
        }
        if self.offsets.first() != Some(&0) {
            problems.push("offsets does not start at 0".to_string());
        }
        if let Some(w) = self
            .offsets
            .windows(2)
            .position(|w| w[0] >= w[1])
        {
            problems.push(format!(
                "offsets not strictly increasing at path {w} ({} → {}); every sanitized path has ≥ 2 hops",
                self.offsets[w],
                self.offsets[w + 1]
            ));
            return problems;
        }
        if self.offsets.last().copied().unwrap_or(0) as usize != self.ids.len() {
            problems.push(format!(
                "offsets end at {} but ids has {} entries",
                self.offsets.last().copied().unwrap_or(0),
                self.ids.len()
            ));
            return problems;
        }
        let n = self.interner.len();
        for (i, &id) in self.ids.iter().enumerate() {
            if id as usize >= n {
                problems.push(format!("ids[{i}] = {id} out of range for {n} interned AS(es)"));
                break;
            }
        }
        if let Some(p) = self.multiplicity.iter().position(|&m| m == 0) {
            problems.push(format!("multiplicity[{p}] = 0; every distinct path collapses ≥ 1 sample"));
        }
        for p in 1..np {
            if self.path(p - 1) >= self.path(p) {
                problems.push(format!(
                    "paths {} and {p} not strictly ascending — arena not sorted or not deduplicated",
                    p - 1
                ));
                break;
            }
        }
        problems
    }

    /// Check every arena invariant, returning human-readable violations
    /// (empty = well-formed). Beyond the base layout checks this also
    /// verifies the inverted index: correct span totals and every
    /// `(path, position)` entry mapping back to its id.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = self.base_problems();
        if !problems.is_empty() {
            return problems;
        }
        let n = self.interner.len();
        if self.inv_offsets.len() != n + 1 || self.inv_entries.len() != self.ids.len() {
            problems.push(format!(
                "inverted index shape mismatch: {} offset(s) / {} entr(ies) for {n} AS(es) / {} hop(s)",
                self.inv_offsets.len(),
                self.inv_entries.len(),
                self.ids.len()
            ));
            return problems;
        }
        for a in 0..n {
            let (lo, hi) = (self.inv_offsets[a] as usize, self.inv_offsets[a + 1] as usize);
            if lo > hi || hi > self.inv_entries.len() {
                problems.push(format!("inverted index span of id {a} is malformed ({lo}..{hi})"));
                return problems;
            }
            for &e in &self.inv_entries[lo..hi] {
                let (p, pos) = ((e >> 32) as usize, e as u32 as usize);
                if p >= self.len() || pos >= self.path(p).len() || self.path(p)[pos] as usize != a {
                    problems.push(format!(
                        "inverted index entry (path {p}, pos {pos}) of id {a} does not map back"
                    ));
                    return problems;
                }
            }
        }
        problems
    }
}

/// Counting-sort inversion of the flat hop array: for every dense id,
/// the packed `(path << 32) | position` occurrences, ascending.
fn invert(offsets: &[u32], ids: &[u32], n: usize) -> (Vec<u32>, Vec<u64>) {
    let mut inv_offsets = vec![0u32; n + 1];
    for &id in ids {
        inv_offsets[id as usize + 1] += 1;
    }
    for i in 1..=n {
        inv_offsets[i] += inv_offsets[i - 1];
    }
    let mut cursor: Vec<u32> = inv_offsets[..n].to_vec();
    let mut entries = vec![0u64; ids.len()];
    for p in 0..offsets.len().saturating_sub(1) {
        let (lo, hi) = (offsets[p] as usize, offsets[p + 1] as usize);
        for (pos, &id) in ids[lo..hi].iter().enumerate() {
            let slot = cursor[id as usize];
            entries[slot as usize] = ((p as u64) << 32) | pos as u64;
            cursor[id as usize] = slot + 1;
        }
    }
    (inv_offsets, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};
    use std::collections::HashSet;

    fn sanitized(raw: &[&[u32]]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn dedup_matches_hashset_distinct_sort() {
        // Satellite 1 pin: arena dedup order == old HashSet + clone +
        // sort_by(path.0) order, multiplicities counted.
        let raw: Vec<&[u32]> = vec![
            &[9, 1, 5, 7],
            &[9, 1, 5, 7], // duplicate
            &[8, 1, 5],
            &[9, 2, 5, 7],
            &[8, 1, 5], // duplicate
            &[7, 2, 1],
        ];
        let clean = sanitized(&raw);
        let arena = PathArena::build(&clean);

        let mut old: Vec<AsPath> = {
            let set: HashSet<&AsPath> = clean.paths().collect();
            set.into_iter().cloned().collect()
        };
        old.sort_by(|a, b| a.0.cmp(&b.0));

        assert_eq!(arena.distinct_aspaths(), old);
        assert_eq!(arena.len(), 4);
        let mults: Vec<u32> = (0..arena.len()).map(|p| arena.multiplicity(p)).collect();
        assert_eq!(mults.iter().sum::<u32>() as usize, clean.samples.len());
        assert!(mults.iter().filter(|&&m| m == 2).count() == 2);
    }

    #[test]
    fn inverted_index_is_complete_and_ordered() {
        let clean = sanitized(&[&[9, 1, 5, 7], &[8, 1, 5], &[7, 2, 1]]);
        let arena = PathArena::build(&clean);
        assert!(arena.validate().is_empty(), "{:?}", arena.validate());
        let mut seen = 0usize;
        for a in 0..dense_id(arena.num_ases()) {
            let occ: Vec<(u32, u32)> = arena.occurrences(a).collect();
            // Ascending by (path, position).
            assert!(occ.windows(2).all(|w| w[0] < w[1]), "id {a}: {occ:?}");
            for &(p, pos) in &occ {
                assert_eq!(arena.path(p as usize)[pos as usize], a);
            }
            seen += occ.len();
        }
        assert_eq!(seen, arena.total_hops());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let raw: Vec<Vec<u32>> = (0..120)
            .map(|i| vec![900 + i % 7, 50 + i % 11, 20 + i % 5, 10 + i % 3, 1])
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        let clean = sanitized(&refs);
        let seq = PathArena::build_with(&clean, Parallelism::sequential());
        let par = PathArena::build_with(&clean, Parallelism::threads(4));
        assert_eq!(seq.offsets, par.offsets);
        assert_eq!(seq.ids, par.ids);
        assert_eq!(seq.multiplicity, par.multiplicity);
        assert_eq!(seq.inv_offsets, par.inv_offsets);
        assert_eq!(seq.inv_entries, par.inv_entries);
    }

    #[test]
    fn validate_catches_corruption() {
        let clean = sanitized(&[&[9, 1, 5], &[8, 1, 5]]);
        let good = PathArena::build(&clean);
        assert!(good.validate().is_empty());

        // Non-monotone offsets.
        let bad = PathArena::from_raw(
            good.interner.clone(),
            vec![0, 3, 2],
            good.ids.clone(),
            good.multiplicity.clone(),
        );
        assert!(bad.validate().iter().any(|p| p.contains("strictly increasing")));

        // Out-of-range id.
        let mut ids = good.ids.clone();
        ids[0] = 999;
        let bad = PathArena::from_raw(
            good.interner.clone(),
            good.offsets.clone(),
            ids,
            good.multiplicity.clone(),
        );
        assert!(bad.validate().iter().any(|p| p.contains("out of range")));

        // Zero multiplicity.
        let bad = PathArena::from_raw(
            good.interner.clone(),
            good.offsets.clone(),
            good.ids.clone(),
            vec![1, 0],
        );
        assert!(bad.validate().iter().any(|p| p.contains("multiplicity")));

        // Duplicate (non-distinct) paths.
        let dup_ids: Vec<u32> = [good.path(0), good.path(0)].concat();
        let dup_off = vec![0, dense_id(good.path(0).len()), dense_id(dup_ids.len())];
        let bad = PathArena::from_raw(good.interner.clone(), dup_off, dup_ids, vec![1, 1]);
        assert!(bad.validate().iter().any(|p| p.contains("ascending")));
    }

    #[test]
    fn empty_input_yields_empty_arena() {
        let clean = sanitized(&[]);
        let arena = PathArena::build(&clean);
        assert!(arena.is_empty());
        assert_eq!(arena.offsets(), &[0]);
        assert!(arena.validate().is_empty());
        assert!(arena.distinct_aspaths().is_empty());
    }
}
