//! Semantic auditor over inferred artifacts.
//!
//! Where `asrank-lint` guards the *source* (no nondeterministic
//! iteration, no panics), this module guards the *outputs*: given a
//! relationship assignment — and optionally the sanitized paths and
//! clique it was inferred from — it re-derives the structural invariants
//! the paper's algorithm promises and reports every violation in a
//! severity-ranked list. The checks:
//!
//! 1. **CSR well-formedness** — adjacency built from the relationship
//!    map must come out sorted, deduplicated, in-bounds, and symmetric
//!    for p2p (the representation every cone/SCC pass relies on).
//! 2. **Clique mutual reachability** — every clique pair must be
//!    classified p2p (S3 seeds them, S4–S10 must not overwrite them).
//! 3. **p2c cycles** — cycles are inference errors (warning), but every
//!    cycle must lie inside a Tarjan-reported SCC and the condensation
//!    must be acyclic (anything else is an algorithmic bug: error).
//! 4. **Cone containment** — a customer's recursive cone must be a
//!    subset of each of its providers' cones (transitive closure
//!    property; guards the output-sensitive cone DP).
//! 5. **Cone agreement** — the hybrid arena/bitset cone implementation
//!    must agree with the `HashSet` reference oracle on a deterministic
//!    sample of ASes.
//! 6. **Valley-free consistency** — every sanitized path graded against
//!    the final assignment: unclassified links are errors (S10
//!    guarantees total coverage of observed links); Gao-Rexford
//!    violations are warnings below a fraction threshold, errors above.
//! 7. **Path-arena well-formedness** — the interned [`PathArena`] built
//!    from the sanitized paths must satisfy its layout invariants
//!    (offsets monotone, ids in range, multiplicities ≥ 1, paths sorted
//!    and actually distinct, inverted index consistent); the valley
//!    grading reads from the same arena.
//!
//! Exposed on the CLI as `asrank audit`; `AuditReport::passed` is the
//! CI gate (`make audit`).

use crate::cone::CustomerCones;
use crate::csr::Csr;
use crate::engine::{Artifact, Snapshot};
use crate::patharena::PathArena;
use crate::sanitize::SanitizedPaths;
use crate::scc;
use crate::valley::grade_arena;
use asrank_types::prelude::*;
use asrank_types::EngineError;

/// How bad a finding is. Ordering is by severity: errors sort first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Invariant violation — the artifact is unusable or the code that
    /// produced it is buggy. `make audit` fails.
    Error,
    /// Quality signal the paper expects to be rare (e.g. c2p cycles);
    /// reported but not fatal.
    Warning,
    /// A check that ran and passed, with its evidence.
    Info,
}

/// One audit finding.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// Severity of this finding.
    pub severity: Severity,
    /// Stable check identifier, e.g. `csr-well-formed`.
    pub check: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// Severity-ranked audit results.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All findings, sorted most severe first (then by check id).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// True when no error-severity findings exist (warnings allowed).
    pub fn passed(&self) -> bool {
        self.errors() == 0
    }

    /// Render the severity-ranked report as text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "asrank audit: {} finding(s), {} error(s), {} warning(s) — {}\n",
            self.findings.len(),
            self.errors(),
            self.warnings(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "warn ",
                Severity::Info => "ok   ",
            };
            out.push_str(&format!("[{tag}] {}: {}\n", f.check, f.detail));
        }
        out
    }

    fn push(&mut self, severity: Severity, check: &'static str, detail: String) {
        self.findings.push(AuditFinding {
            severity,
            check,
            detail,
        });
    }
}

/// Tunables for the audit; `Default` suits both CI fixtures and
/// medium-scale runs.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Cap on (customer, provider) pairs exhaustively checked for cone
    /// containment; beyond it a deterministic stride sample is used.
    pub max_containment_pairs: usize,
    /// Number of ASes sampled (deterministic stride over the sorted AS
    /// list) for the hybrid-vs-reference cone comparison.
    pub reference_sample: usize,
    /// Valley-violation fraction above which the finding escalates from
    /// warning to error.
    pub valley_error_fraction: f64,
    /// Worker threads for the cone computations.
    pub parallelism: Parallelism,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            max_containment_pairs: 100_000,
            reference_sample: 64,
            valley_error_fraction: 0.05,
            parallelism: Parallelism::auto(),
        }
    }
}

/// Run every applicable check. `sanitized` and `clique` are optional so
/// the auditor can grade a bare relationship file; the corresponding
/// checks report as skipped.
pub fn audit(
    rels: &RelationshipMap,
    sanitized: Option<&SanitizedPaths>,
    clique: Option<&[Asn]>,
    cfg: &AuditConfig,
) -> AuditReport {
    let mut report = AuditReport::default();

    // Dense ids shared by the graph checks.
    let interner = AsnInterner::from_ases(rels.link_endpoints());
    let n = interner.len();

    check_csr(rels, &interner, n, &mut report);
    match clique {
        Some(c) => check_clique(rels, c, &mut report),
        None => report.push(
            Severity::Info,
            "clique-p2p",
            "skipped (no clique provided)".to_string(),
        ),
    }
    check_cycles(rels, &interner, n, &mut report);
    check_cones(rels, cfg, &mut report);
    match sanitized {
        Some(s) => {
            let arena = PathArena::build_with(s, cfg.parallelism);
            check_arena(&arena, &mut report);
            check_valley(rels, &arena, cfg, &mut report);
        }
        None => {
            report.push(
                Severity::Info,
                "path-arena",
                "skipped (no paths provided)".to_string(),
            );
            report.push(
                Severity::Info,
                "valley-free",
                "skipped (no paths provided)".to_string(),
            );
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.severity, a.check).cmp(&(b.severity, b.check)));
    report
}

/// Audit a single memoized engine artifact — the partial-materialization
/// path behind `asrank audit --stage <name>`.
///
/// Materializes exactly the named stage (plus its upstream dependencies,
/// served from the snapshot's store when warm) and grades the artifact
/// against the invariants appropriate to its kind: sanitize counter
/// conservation for S1, ranking-order monotonicity for S2, sortedness
/// for the clique and link lists, arena layout invariants, kept-mask
/// consistency for S4, clique-p2p preservation for the S5–S10 states,
/// the full relationship audit for S11, and member-list sortedness for
/// the cones. Unknown stage names surface as
/// [`EngineError::UnknownStage`].
pub fn audit_stage(
    snapshot: &mut Snapshot<'_>,
    stage: &str,
    cfg: &AuditConfig,
) -> Result<AuditReport, EngineError> {
    let artifact = snapshot.materialize(stage)?;
    let mut report = AuditReport::default();

    match &artifact {
        Artifact::Sanitized(s) => {
            let r = s.report;
            let accounted =
                r.output_paths + r.discarded_loops + r.discarded_reserved + r.discarded_short;
            if r.input_paths != accounted {
                report.push(
                    Severity::Error,
                    "sanitize-conservation",
                    format!(
                        "input {} != output {} + loops {} + reserved {} + short {}",
                        r.input_paths,
                        r.output_paths,
                        r.discarded_loops,
                        r.discarded_reserved,
                        r.discarded_short
                    ),
                );
            } else if r.output_paths != s.samples.len() {
                report.push(
                    Severity::Error,
                    "sanitize-conservation",
                    format!(
                        "report says {} output paths but {} samples survive",
                        r.output_paths,
                        s.samples.len()
                    ),
                );
            } else {
                report.push(
                    Severity::Info,
                    "sanitize-conservation",
                    format!(
                        "{} input path(s) fully accounted for; {} survive",
                        r.input_paths, r.output_paths
                    ),
                );
            }
            let short = s.samples.iter().filter(|p| p.path.len() < 2).count();
            if short > 0 {
                report.push(
                    Severity::Error,
                    "sanitize-min-length",
                    format!("{short} sanitized path(s) have fewer than 2 hops"),
                );
            } else {
                report.push(
                    Severity::Info,
                    "sanitize-min-length",
                    "every sanitized path has ≥ 2 hops".to_string(),
                );
            }
        }
        Artifact::Degrees(d) => {
            let ranked = d.ranked();
            let bad = ranked.windows(2).position(|w| {
                let ka = (
                    std::cmp::Reverse(d.transit_degree(w[0])),
                    std::cmp::Reverse(d.node_degree(w[0])),
                    w[0],
                );
                let kb = (
                    std::cmp::Reverse(d.transit_degree(w[1])),
                    std::cmp::Reverse(d.node_degree(w[1])),
                    w[1],
                );
                ka > kb
            });
            match bad {
                Some(i) => report.push(
                    Severity::Error,
                    "degree-ranking",
                    format!(
                        "ranking violates (transit desc, node desc, ASN asc) at position {i} ({} before {})",
                        ranked[i],
                        ranked[i + 1]
                    ),
                ),
                None => report.push(
                    Severity::Info,
                    "degree-ranking",
                    format!("{} AS(es) ranked in paper order", ranked.len()),
                ),
            }
        }
        Artifact::Clique(c) => {
            if c.windows(2).any(|w| w[0] >= w[1]) {
                report.push(
                    Severity::Error,
                    "clique-sorted",
                    "clique members are not strictly ascending by ASN".to_string(),
                );
            } else {
                report.push(
                    Severity::Info,
                    "clique-sorted",
                    format!("{} clique member(s), strictly ascending", c.len()),
                );
            }
        }
        Artifact::Arena(a) => check_arena(a, &mut report),
        Artifact::Kept(k) => {
            let arena = snapshot.arena()?;
            if k.kept.len() != arena.len() {
                report.push(
                    Severity::Error,
                    "kept-mask",
                    format!(
                        "kept mask covers {} path(s) but the arena holds {}",
                        k.kept.len(),
                        arena.len()
                    ),
                );
            }
            let dropped = k.kept.iter().filter(|&&b| !b).count();
            if dropped != k.discarded {
                report.push(
                    Severity::Error,
                    "kept-mask",
                    format!(
                        "discard counter says {} but the mask drops {dropped}",
                        k.discarded
                    ),
                );
            }
            if report.findings.is_empty() {
                report.push(
                    Severity::Info,
                    "kept-mask",
                    format!(
                        "{} of {} distinct path(s) kept ({} poisoned)",
                        k.kept.len() - dropped,
                        k.kept.len(),
                        dropped
                    ),
                );
            }
        }
        Artifact::Links(l) => {
            if l.windows(2).any(|w| w[0] >= w[1]) {
                report.push(
                    Severity::Error,
                    "links-sorted",
                    "observed link list is not strictly sorted/deduplicated".to_string(),
                );
            } else {
                report.push(
                    Severity::Info,
                    "links-sorted",
                    format!("{} observed link(s), strictly sorted", l.len()),
                );
            }
        }
        Artifact::Steps(s) => {
            // S4–S10 must preserve the clique's mutual p2p seeding.
            let clique = snapshot.clique()?;
            check_clique(&s.rels, &clique, &mut report);
        }
        Artifact::Inference(inf) => {
            let sanitized = snapshot.sanitized()?;
            let full = audit(
                &inf.relationships,
                Some(sanitized.as_ref()),
                Some(inf.clique.as_slice()),
                cfg,
            );
            report.findings.extend(full.findings);
        }
        Artifact::Cone(c) => {
            let mut unsorted = 0usize;
            let mut size_mismatch = 0usize;
            for (asn, members) in c.iter_members() {
                if members.windows(2).any(|w| w[0] >= w[1]) {
                    unsorted += 1;
                }
                if c.size(asn).ases != members.len() {
                    size_mismatch += 1;
                }
            }
            if unsorted > 0 || size_mismatch > 0 {
                report.push(
                    Severity::Error,
                    "cone-members",
                    format!(
                        "{unsorted} cone(s) with unsorted members, {size_mismatch} with size/member mismatch"
                    ),
                );
            } else {
                report.push(
                    Severity::Info,
                    "cone-members",
                    format!(
                        "{} cone(s): member lists sorted, sizes match membership",
                        c.len()
                    ),
                );
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.severity, a.check).cmp(&(b.severity, b.check)));
    Ok(report)
}

/// Check 1: CSR adjacency built from the map must be sorted, deduped,
/// in-bounds, and symmetric on the p2p sub-graph.
fn check_csr(rels: &RelationshipMap, interner: &AsnInterner, n: usize, out: &mut AuditReport) {
    let mut c2p_edges: Vec<(u32, u32)> = Vec::new();
    let mut missing = 0usize;
    for (c, p) in rels.c2p_pairs() {
        match (interner.get(c), interner.get(p)) {
            (Some(ci), Some(pi)) => c2p_edges.push((ci, pi)),
            _ => missing += 1,
        }
    }
    let mut p2p_edges: Vec<(u32, u32)> = Vec::new();
    for (a, b) in rels.p2p_pairs() {
        match (interner.get(a), interner.get(b)) {
            (Some(ai), Some(bi)) => {
                p2p_edges.push((ai, bi));
                p2p_edges.push((bi, ai));
            }
            _ => missing += 1,
        }
    }
    if missing > 0 {
        out.push(
            Severity::Error,
            "csr-well-formed",
            format!("{missing} link endpoint(s) missing from the interner seeded by the map itself"),
        );
        return;
    }

    let c2p = Csr::from_edges_dedup(n, &c2p_edges);
    let p2p = Csr::from_edges_dedup(n, &p2p_edges);

    let mut problems: Vec<String> = Vec::new();
    for (name, csr) in [("c2p", &c2p), ("p2p", &p2p)] {
        for u in 0..dense_id(n) {
            let nbrs = csr.neighbors(u);
            if nbrs.windows(2).any(|w| w[0] >= w[1]) {
                problems.push(format!("{name} adjacency of id {u} not strictly sorted"));
            }
            if nbrs.iter().any(|&v| v as usize >= n) {
                problems.push(format!("{name} adjacency of id {u} has out-of-bounds target"));
            }
        }
    }
    for u in 0..dense_id(n) {
        for &v in p2p.neighbors(u) {
            if p2p.neighbors(v).binary_search(&u).is_err() {
                problems.push(format!("p2p edge {u}→{v} has no reverse edge"));
            }
        }
    }

    if problems.is_empty() {
        out.push(
            Severity::Info,
            "csr-well-formed",
            format!(
                "{} c2p + {} p2p directed edges over {n} ASes: sorted, deduped, in-bounds, p2p symmetric",
                c2p_edges.len(),
                p2p_edges.len()
            ),
        );
    } else {
        let shown = problems.len().min(5);
        out.push(
            Severity::Error,
            "csr-well-formed",
            format!(
                "{} problem(s); first {shown}: {}",
                problems.len(),
                problems[..shown].join("; ")
            ),
        );
    }
}

/// Check 2: every clique pair must be classified p2p.
fn check_clique(rels: &RelationshipMap, clique: &[Asn], out: &mut AuditReport) {
    let mut members: Vec<Asn> = clique.to_vec();
    members.sort_unstable();
    members.dedup();
    let mut missing: Vec<String> = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            if !rels.is_p2p(a, b) {
                missing.push(format!("{a}–{b}"));
            }
        }
    }
    if missing.is_empty() {
        out.push(
            Severity::Info,
            "clique-p2p",
            format!(
                "all {} clique pair(s) mutually p2p",
                members.len() * members.len().saturating_sub(1) / 2
            ),
        );
    } else {
        let shown = missing.len().min(5);
        out.push(
            Severity::Error,
            "clique-p2p",
            format!(
                "{} clique pair(s) not p2p; first {shown}: {}",
                missing.len(),
                missing[..shown].join(", ")
            ),
        );
    }
}

/// Check 3: p2c cycles must all lie inside Tarjan-reported SCCs, and the
/// SCC condensation must be acyclic.
fn check_cycles(rels: &RelationshipMap, interner: &AsnInterner, n: usize, out: &mut AuditReport) {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (c, p) in rels.c2p_pairs() {
        if let (Some(ci), Some(pi)) = (interner.get(c), interner.get(p)) {
            edges.push((ci, pi));
        }
    }
    let adj = Csr::from_edges_dedup(n, &edges);
    let s = scc::tarjan(n, &adj);

    let cycle_links = edges
        .iter()
        .filter(|&&(c, p)| s.comp[c as usize] == s.comp[p as usize] && s.on_cycle(c as usize))
        .count();
    // Self-loops cannot exist (RelationshipMap keys are unordered pairs
    // of distinct ASes), so component size ≥ 2 is the exact cycle test.

    // Condensation acyclicity via Kahn.
    let mut comp_edges: Vec<(u32, u32)> = Vec::new();
    for &(c, p) in &edges {
        let (cc, pc) = (s.comp[c as usize], s.comp[p as usize]);
        if cc != pc {
            comp_edges.push((cc, pc));
        }
    }
    comp_edges.sort_unstable();
    comp_edges.dedup();
    let comp_adj = Csr::from_edges_dedup(s.count, &comp_edges);
    let mut indeg = vec![0u32; s.count];
    for &(_, pc) in &comp_edges {
        indeg[pc as usize] += 1;
    }
    let mut queue: Vec<u32> = (0..dense_id(s.count))
        .filter(|&v| indeg[v as usize] == 0)
        .collect();
    let mut consumed = 0usize;
    while let Some(v) = queue.pop() {
        consumed += 1;
        for &w in comp_adj.neighbors(v) {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }

    if consumed != s.count {
        out.push(
            Severity::Error,
            "p2c-cycles",
            format!(
                "SCC condensation is not acyclic ({} of {} components ordered) — Tarjan or CSR bug",
                consumed, s.count
            ),
        );
    } else if cycle_links > 0 {
        out.push(
            Severity::Warning,
            "p2c-cycles",
            format!(
                "{cycle_links} c2p link(s) inside {} non-trivial SCC(s) — inference errors the validation framework should surface",
                s.sizes.iter().filter(|&&z| z >= 2).count()
            ),
        );
    } else {
        out.push(
            Severity::Info,
            "p2c-cycles",
            format!("c2p digraph acyclic ({} ASes, {} links)", n, edges.len()),
        );
    }
}

/// True when sorted slice `sub` is a subset of sorted slice `sup`.
fn subset_sorted(sub: &[Asn], sup: &[Asn]) -> bool {
    let mut j = 0usize;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Checks 4 and 5: cone containment along every (sampled) c2p link, and
/// hybrid-vs-reference agreement on a deterministic AS sample.
fn check_cones(rels: &RelationshipMap, cfg: &AuditConfig, out: &mut AuditReport) {
    let cones = CustomerCones::recursive_with(rels, None, cfg.parallelism);

    // Containment: customer cone ⊆ provider cone for each c2p pair.
    let mut pairs: Vec<(Asn, Asn)> = rels.c2p_pairs().collect();
    pairs.sort_unstable();
    let stride = (pairs.len() / cfg.max_containment_pairs.max(1)).max(1);
    let mut checked = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for (c, p) in pairs.iter().copied().step_by(stride) {
        checked += 1;
        if !subset_sorted(cones.members(c), cones.members(p)) {
            violations.push(format!("cone({c}) ⊄ cone({p})"));
        }
    }
    if violations.is_empty() {
        out.push(
            Severity::Info,
            "cone-containment",
            format!(
                "customer ⊆ provider holds on {checked} of {} c2p link(s){}",
                pairs.len(),
                if stride > 1 {
                    format!(" (stride {stride} sample)")
                } else {
                    String::new()
                }
            ),
        );
    } else {
        let shown = violations.len().min(5);
        out.push(
            Severity::Error,
            "cone-containment",
            format!(
                "{} violation(s); first {shown}: {}",
                violations.len(),
                violations[..shown].join(", ")
            ),
        );
    }

    // Agreement with the reference oracle on a deterministic sample.
    let reference = CustomerCones::recursive_reference(rels, None);
    let mut ases: Vec<Asn> = rels.ases().collect();
    ases.sort_unstable();
    ases.dedup();
    let stride = (ases.len() / cfg.reference_sample.max(1)).max(1);
    let mut sampled = 0usize;
    let mut disagreements: Vec<String> = Vec::new();
    for &asn in ases.iter().step_by(stride) {
        sampled += 1;
        if cones.members(asn) != reference.members(asn) {
            disagreements.push(format!("members({asn}) differ"));
        } else if cones.size(asn).ases != reference.size(asn).ases {
            disagreements.push(format!("size({asn}) differs"));
        }
    }
    if disagreements.is_empty() {
        out.push(
            Severity::Info,
            "cone-agreement",
            format!("hybrid and reference cones agree on {sampled} sampled AS(es)"),
        );
    } else {
        let shown = disagreements.len().min(5);
        out.push(
            Severity::Error,
            "cone-agreement",
            format!(
                "{} disagreement(s); first {shown}: {}",
                disagreements.len(),
                disagreements[..shown].join(", ")
            ),
        );
    }
}

/// Check 7: the interned path arena must satisfy every layout
/// invariant. `pub` so corruption-fixture tests can grade arenas built
/// via [`PathArena::from_raw`] directly.
pub fn check_arena(arena: &PathArena, out: &mut AuditReport) {
    let problems = arena.validate();
    if problems.is_empty() {
        out.push(
            Severity::Info,
            "path-arena",
            format!(
                "{} distinct path(s), {} hop(s) over {} AS(es): offsets monotone, ids in range, multiplicities ≥ 1, paths sorted+distinct, inverted index consistent",
                arena.len(),
                arena.total_hops(),
                arena.num_ases()
            ),
        );
    } else {
        let shown = problems.len().min(5);
        out.push(
            Severity::Error,
            "path-arena",
            format!(
                "{} problem(s); first {shown}: {}",
                problems.len(),
                problems[..shown].join("; ")
            ),
        );
    }
}

/// Check 6: grade every distinct sanitized path (read from the shared
/// arena) against the final relationship assignment.
fn check_valley(
    rels: &RelationshipMap,
    arena: &PathArena,
    cfg: &AuditConfig,
    out: &mut AuditReport,
) {
    let stats = grade_arena(arena, rels, cfg.parallelism);
    let total = stats.total;
    let (unknown, valleys) = (stats.unknown, stats.valleys);
    let first_unknown = stats
        .first_unknown
        .map(|(p, pos)| format!("{} at hop {pos}", arena.resolve_path(p)));
    let first_valley = stats
        .first_valley
        .map(|(p, pos)| format!("{} at hop {pos}", arena.resolve_path(p)));

    if unknown > 0 {
        out.push(
            Severity::Error,
            "valley-unknown-links",
            format!(
                "{unknown} of {total} distinct path(s) cross a link the assignment does not classify (S10 promises total coverage); first: {}",
                first_unknown.unwrap_or_default()
            ),
        );
    } else {
        out.push(
            Severity::Info,
            "valley-unknown-links",
            format!("all links of {total} distinct path(s) are classified"),
        );
    }

    let frac = if total == 0 {
        0.0
    } else {
        valleys as f64 / total as f64
    };
    if valleys == 0 {
        out.push(
            Severity::Info,
            "valley-free",
            format!("{total} distinct path(s) all valley-free"),
        );
    } else {
        let sev = if frac > cfg.valley_error_fraction {
            Severity::Error
        } else {
            Severity::Warning
        };
        out.push(
            sev,
            "valley-free",
            format!(
                "{valleys} of {total} distinct path(s) ({:.2}%) violate Gao-Rexford export rules; first: {}",
                frac * 100.0,
                first_valley.unwrap_or_default()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_rels() -> (RelationshipMap, Vec<Asn>) {
        // Clique {1, 2}; 3 and 4 buy from the clique; 5 buys from 3.
        let mut rels = RelationshipMap::new();
        rels.insert_p2p(Asn(1), Asn(2));
        rels.insert_c2p(Asn(3), Asn(1));
        rels.insert_c2p(Asn(4), Asn(2));
        rels.insert_c2p(Asn(5), Asn(3));
        rels.insert_p2p(Asn(3), Asn(4));
        (rels, vec![Asn(1), Asn(2)])
    }

    #[test]
    fn clean_toy_assignment_passes() {
        let (rels, clique) = toy_rels();
        let report = audit(&rels, None, Some(&clique), &AuditConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.errors(), 0);
        // All structural checks ran.
        for check in ["csr-well-formed", "clique-p2p", "p2c-cycles", "cone-containment", "cone-agreement"] {
            assert!(
                report.findings.iter().any(|f| f.check == check),
                "missing {check} in {}",
                report.render()
            );
        }
    }

    #[test]
    fn broken_clique_is_an_error() {
        let (mut rels, clique) = toy_rels();
        let _ = rels.remove(Asn(1), Asn(2));
        // Keep both ASes in the map so the pair is still expected.
        rels.insert_c2p(Asn(9), Asn(1));
        rels.insert_c2p(Asn(9), Asn(2));
        let report = audit(&rels, None, Some(&clique), &AuditConfig::default());
        assert!(!report.passed(), "{}", report.render());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == "clique-p2p" && f.severity == Severity::Error));
    }

    #[test]
    fn c2p_cycle_is_a_warning_not_an_error() {
        let (mut rels, clique) = toy_rels();
        // 5 → 3 already exists; close the cycle 5 → 3 → 6 → 5.
        rels.insert_c2p(Asn(6), Asn(5));
        rels.insert_c2p(Asn(3), Asn(6));
        let report = audit(&rels, None, Some(&clique), &AuditConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == "p2c-cycles" && f.severity == Severity::Warning));
    }

    #[test]
    fn severity_ranking_puts_errors_first() {
        let (mut rels, clique) = toy_rels();
        let _ = rels.remove(Asn(1), Asn(2));
        rels.insert_c2p(Asn(9), Asn(1));
        rels.insert_c2p(Asn(9), Asn(2));
        // Add a cycle so a warning exists alongside the error.
        rels.insert_c2p(Asn(7), Asn(9));
        rels.insert_c2p(Asn(9), Asn(7));
        let report = audit(&rels, None, Some(&clique), &AuditConfig::default());
        let severities: Vec<Severity> = report.findings.iter().map(|f| f.severity).collect();
        let mut ranked = severities.clone();
        ranked.sort();
        assert_eq!(severities, ranked, "{}", report.render());
        assert!(!report.passed());
    }

    #[test]
    fn subset_sorted_basics() {
        let a = [Asn(1), Asn(3), Asn(5)];
        let b = [Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)];
        assert!(subset_sorted(&a, &b));
        assert!(!subset_sorted(&b, &a));
        assert!(subset_sorted(&[], &a));
        assert!(subset_sorted(&a, &a));
        assert!(!subset_sorted(&[Asn(6)], &b));
    }
}
