//! Incremental inference sessions: absorb BGP update batches in place
//! and re-emit snapshots that recompute only the dirty slice of the DAG.
//!
//! A [`DeltaSession`] is the stateful counterpart of a one-shot
//! [`Snapshot`]: it owns the evolving sample set plus the per-sample
//! evidence that makes small updates cheap —
//!
//! * one cached sanitize **fate** per sample (S1 re-derives only the
//!   samples a batch touched, then reassembles [`SanitizedPaths`] from
//!   the cache);
//! * a [`MutablePathArena`] absorbing path add/remove deltas in place,
//!   re-emitting a bit-identical arena on demand;
//! * maintained `(vp, first hop)` distinct-prefix counters, so S6 —
//!   the only relationship step that reads raw samples — classifies
//!   from counters instead of re-scanning every sample;
//! * a refcounted neighbor-link ledger, so S2 assembles its degree
//!   table in `O(V log V)` from live counters instead of re-walking
//!   every hop of every sanitized path.
//!
//! Everything else is dirty-set propagation inside the engine
//! (`Snapshot::delta_run`): a stage whose input aspects are all clean is
//! *injected* from the previous emission, a recomputed stage whose
//! output equals its previous artifact cuts the propagation off, and
//! the instrumentation records every decision as
//! [`StageStats::delta_skipped`] / [`StageStats::delta_recomputed`]
//! counters.
//!
//! Equivalence contract: after any sequence of [`DeltaSession::apply`]
//! calls, [`DeltaSession::refresh`] leaves the session holding exactly
//! the artifacts a cold [`Snapshot`] over the same final sample set
//! would produce — byte-identical, at every thread count. The
//! `delta_equivalence` proptests pin this against the [`UpdateBatch::apply`]
//! oracle.
//!
//! [`StageStats::delta_skipped`]: crate::engine::StageStats::delta_skipped
//! [`StageStats::delta_recomputed`]: crate::engine::StageStats::delta_recomputed

use crate::cone::CustomerCones;
use crate::degree::DegreeTable;
use crate::engine::{stage_idx, Artifact, DeltaPlan, DeltaProvider, Snapshot, StageReport, StepState};
use crate::patharena::{MutablePathArena, PathArena, PathEvent};
use crate::pipeline::{steps, Inference, InferenceConfig};
use crate::sanitize::{sample_fate, SampleFate, SanitizeReport, SanitizedPaths};
use asrank_types::prelude::*;
use asrank_types::{EngineError, FxHashMap, FxHashSet, PathDelta, UpdateBatch};
use std::sync::Arc;

/// What one [`DeltaSession::refresh`] did: how much of the DAG the
/// accumulated batches actually dirtied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Stages that reused the previous emission's artifact.
    pub skipped: usize,
    /// Stages re-executed (incremental provider or full body).
    pub recomputed: usize,
}

impl DeltaOutcome {
    /// The dirty set: stages that could not be reused.
    pub fn dirty_set_size(&self) -> usize {
        self.recomputed
    }
}

/// An inference session that folds update batches into its sample set
/// and recomputes only the affected stages on the next emission.
///
/// ```
/// use asrank_core::delta::DeltaSession;
/// use asrank_core::pipeline::InferenceConfig;
/// use asrank_types::{AsPath, Asn, Ipv4Prefix, PathDelta, PathSample, PathSet, UpdateBatch};
///
/// let paths: PathSet = [[100, 10, 1, 2, 20, 200], [200, 20, 2, 1, 10, 100]]
///     .into_iter()
///     .enumerate()
///     .map(|(i, hops)| PathSample {
///         vp: Asn(hops[0]),
///         prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
///         path: AsPath::from_u32s(hops),
///     })
///     .collect();
///
/// let mut session = DeltaSession::new(paths, InferenceConfig::default()).unwrap();
/// let cold = session.inference().unwrap();
///
/// // An empty batch dirties nothing: every stage is a delta skip.
/// session.apply(&UpdateBatch::default()).unwrap();
/// let outcome = session.refresh().unwrap();
/// assert_eq!(outcome.recomputed, 0);
/// assert!(std::sync::Arc::ptr_eq(&cold, &session.inference().unwrap()));
/// ```
#[derive(Clone)]
pub struct DeltaSession {
    /// The evolving sample set, in stable order: surviving samples keep
    /// their positions, replaced paths are rewritten in place, new
    /// announcements append.
    master: PathSet,
    /// One sanitize fate per master sample, positionally aligned.
    fates: Vec<SampleFate>,
    cfg: InferenceConfig,
    /// In-place distinct-path table over the clean fates.
    slots: MutablePathArena,
    /// Clean samples per `(vp, first hop)` — S6's distinct-prefix
    /// evidence (exact because `(vp, prefix)` is unique per sample).
    via: FxHashMap<(Asn, Asn), u32>,
    /// Clean samples per vantage point (the S6 share denominators).
    totals: FxHashMap<Asn, u32>,
    /// Refcounted neighbor links over the clean paths — S2's evidence,
    /// so the delta walk assembles the degree table from counters
    /// instead of re-scanning every sanitized path.
    degrees: DegreeLedger,
    /// `(vp, prefix)` → position in `master`/`fates`, maintained across
    /// batches so apply touches only the samples a batch names.
    index: FxHashMap<(Asn, Ipv4Prefix), u32>,
    /// Sums of the per-sample discard/rewrite counters; the structural
    /// totals (`input_paths`/`output_paths`) are derived on emission.
    counters: SanitizeReport,
    /// Samples surviving sanitization.
    clean: usize,
    /// The previous emission's artifact per stage, in DAG order.
    prev: Vec<Artifact>,
    /// Instrumentation of the last emission (cold or delta).
    last_report: StageReport,
    tok_samples: bool,
    tok_structure: bool,
    tok_mult: bool,
    /// Distinct `(vp, prefix)` keys mutated since the last refresh —
    /// the numerator of the dirty fraction that drives the
    /// [`InferenceConfig::delta_cold_cutover`] decision. A set, not a
    /// counter, so repeated updates to the same key cannot inflate the
    /// fraction past the real churn.
    dirty_keys: FxHashSet<(Asn, Ipv4Prefix)>,
}

impl DeltaSession {
    /// Bind a dataset and configuration, run the cold pipeline once, and
    /// seed the incremental evidence from its artifacts.
    ///
    /// Fails with a typed error when two samples share a `(vp, prefix)`
    /// key — update folding is keyed on that pair, so a duplicated key
    /// would make batch application ambiguous.
    pub fn new(paths: PathSet, cfg: InferenceConfig) -> Result<Self, EngineError> {
        let mut index: FxHashMap<(Asn, Ipv4Prefix), u32> =
            FxHashMap::with_capacity_and_hasher(paths.len(), Default::default());
        for (i, s) in paths.iter().enumerate() {
            if index.insert((s.vp, s.prefix), dense_id(i)).is_some() {
                return Err(EngineError::stage_failed(
                    "delta_session",
                    format!(
                        "duplicate (vp, prefix) sample ({}, {}); update batches fold by that key",
                        s.vp, s.prefix
                    ),
                ));
            }
        }

        // Cold run: materialize all stages, keep the Arc'd artifacts.
        let mut snap = Snapshot::new(&paths, cfg.clone());
        let mut prev = Vec::with_capacity(Snapshot::stage_names().len());
        for name in Snapshot::stage_names() {
            prev.push(snap.materialize(name)?);
        }
        let last_report = snap.stage_report();
        drop(snap);

        let slots = match &prev[stage_idx::PATH_ARENA] {
            Artifact::Arena(a) => MutablePathArena::from_arena(a),
            other => {
                return Err(EngineError::ArtifactType {
                    stage: "delta_session".to_string(),
                    expected: "arena".to_string(),
                    got: other.kind().to_string(),
                })
            }
        };

        let mut session = DeltaSession {
            fates: Vec::with_capacity(paths.len()),
            master: paths,
            cfg,
            slots,
            via: FxHashMap::default(),
            totals: FxHashMap::default(),
            degrees: DegreeLedger::default(),
            index,
            counters: SanitizeReport::default(),
            clean: 0,
            prev,
            last_report,
            tok_samples: false,
            tok_structure: false,
            tok_mult: false,
            dirty_keys: FxHashSet::default(),
        };
        for s in session.master.iter() {
            let fate = sample_fate(&s.path, &session.cfg.sanitize);
            add_report(&mut session.counters, &fate.delta);
            if let Some(path) = &fate.clean {
                session.clean += 1;
                session.degrees.add(path);
                if let Some(key) = vp_key(s.vp, path) {
                    *session.via.entry(key).or_default() += 1;
                    *session.totals.entry(s.vp).or_default() += 1;
                }
            }
            session.fates.push(fate);
        }
        Ok(session)
    }

    /// Fold one update batch into the sample set. Evidence (fates, the
    /// slot table, the S6 counters) is adjusted per touched sample; the
    /// engine runs nothing until [`DeltaSession::refresh`].
    ///
    /// Withdraws of unknown `(vp, prefix)` keys are no-ops, matching
    /// [`UpdateBatch::apply`]. A failure (an internal accounting
    /// invariant violated) leaves the session unusable.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<(), EngineError> {
        if batch.is_empty() {
            return Ok(());
        }
        // In-place pass: replacements rewrite their position, unmatched
        // announcements append in batch (ascending key) order — exactly
        // UpdateBatch::apply's order. Withdrawals of live keys only mark
        // positions; the vec is compacted once afterwards.
        let mut withdrawn: Vec<u32> = Vec::new();
        for d in batch.iter() {
            let (vp, prefix, delta) = (d.0, d.1, &d.2);
            match (self.index.get(&(vp, prefix)).copied(), delta) {
                (Some(i), PathDelta::Withdraw) => {
                    let old = std::mem::replace(
                        &mut self.fates[i as usize],
                        SampleFate {
                            clean: None,
                            delta: SanitizeReport::default(),
                        },
                    );
                    self.retire(vp, &old)?;
                    self.tok_samples = true;
                    self.dirty_keys.insert((vp, prefix));
                    // Batches fold by key, so this key cannot recur; drop
                    // it now and fix up the surviving positions after the
                    // compaction below.
                    self.index.remove(&(vp, prefix));
                    withdrawn.push(i);
                }
                (None, PathDelta::Withdraw) => {}
                (Some(i), PathDelta::Announce(path)) => {
                    let i = i as usize;
                    if self.master.samples_mut()[i].path == *path {
                        continue;
                    }
                    let fate = sample_fate(path, &self.cfg.sanitize);
                    self.admit(vp, &fate);
                    let old = std::mem::replace(&mut self.fates[i], fate);
                    self.retire(vp, &old)?;
                    self.tok_samples = true;
                    self.dirty_keys.insert((vp, prefix));
                    self.master.samples_mut()[i].path = path.clone();
                }
                (None, PathDelta::Announce(path)) => {
                    let fate = sample_fate(path, &self.cfg.sanitize);
                    self.admit(vp, &fate);
                    self.tok_samples = true;
                    self.dirty_keys.insert((vp, prefix));
                    self.index
                        .insert((vp, prefix), dense_id(self.master.len()));
                    self.master.push(PathSample {
                        vp,
                        prefix,
                        path: path.clone(),
                    });
                    self.fates.push(fate);
                }
            }
        }
        if !withdrawn.is_empty() {
            // Order-preserving in-place compaction of the withdrawn
            // positions. The withdrawn keys already left the index, so
            // the survivors only need their positions shifted down by
            // the number of withdrawals below them — a value fix-up
            // over the existing map, with no rehashing and no vec
            // rebuild.
            withdrawn.sort_unstable();
            self.master.remove_sorted_positions(&withdrawn);
            let mut next = 0usize;
            let mut out = 0usize;
            for pos in 0..self.fates.len() {
                if next < withdrawn.len() && withdrawn[next] as usize == pos {
                    next += 1;
                    continue;
                }
                if out != pos {
                    self.fates.swap(out, pos);
                }
                out += 1;
            }
            self.fates.truncate(out);
            // lint: allow(nondeterministic-iter, each value is shifted independently; no ordered output is derived from the visit order)
            for v in self.index.values_mut() {
                *v -= withdrawn.partition_point(|&w| w < *v) as u32;
            }
        }
        Ok(())
    }

    /// Re-emit: run the dirty-set propagation over the accumulated
    /// batches, replace the held artifacts, and reset the dirt tokens.
    /// With no dirt accumulated every stage is a skip and the held
    /// `Arc`s are reused untouched.
    pub fn refresh(&mut self) -> Result<DeltaOutcome, EngineError> {
        // Dirty-fraction cutover: past the configured churn fraction the
        // delta walk recomputes nearly every stage anyway but still pays
        // its per-stage overhead (provider hooks, content-equality
        // comparison of each recomputed artifact against the held one),
        // so a cold run is strictly cheaper. The session evidence
        // (fates, slots, S6 counters) is maintained by `apply`, not by
        // the walk, so skipping the walk loses nothing.
        let dirty_fraction =
            self.dirty_keys.len() as f64 / self.master.len().max(1) as f64;
        if dirty_fraction > self.cfg.delta_cold_cutover {
            let mut snap = Snapshot::new(&self.master, self.cfg.clone());
            let mut prev = Vec::with_capacity(Snapshot::stage_names().len());
            for name in Snapshot::stage_names() {
                prev.push(snap.materialize(name)?);
            }
            self.prev = prev;
            self.last_report = snap.stage_report();
            self.tok_samples = false;
            self.tok_structure = false;
            self.tok_mult = false;
            self.dirty_keys.clear();
            return Ok(DeltaOutcome {
                skipped: 0,
                recomputed: Snapshot::stage_names().len(),
            });
        }
        let plan = DeltaPlan {
            samples: self.tok_samples,
            structure: self.tok_structure,
            mult: self.tok_mult,
        };
        let mut snap = Snapshot::new(&self.master, self.cfg.clone());
        {
            let mut provider = SessionProvider {
                master: &self.master,
                fates: &self.fates,
                clean: self.clean,
                counters: &self.counters,
                slots: &mut self.slots,
                via: &self.via,
                totals: &self.totals,
                ledger: &self.degrees,
                cfg: &self.cfg,
            };
            snap.delta_run(&self.prev, &plan, &mut provider)?;
        }
        let mut prev = Vec::with_capacity(Snapshot::stage_names().len());
        for name in Snapshot::stage_names() {
            prev.push(snap.materialize(name)?);
        }
        self.prev = prev;
        self.last_report = snap.stage_report();
        self.tok_samples = false;
        self.tok_structure = false;
        self.tok_mult = false;
        self.dirty_keys.clear();
        let (skipped, recomputed) = self.last_report.stages.iter().fold(
            (0usize, 0usize),
            |(sk, rc), &(_, s)| {
                (
                    sk + s.delta_skipped as usize,
                    rc + s.delta_recomputed as usize,
                )
            },
        );
        Ok(DeltaOutcome { skipped, recomputed })
    }

    /// True when applied batches have dirtied evidence that the next
    /// [`DeltaSession::refresh`] must propagate.
    pub fn pending(&self) -> bool {
        self.tok_samples || self.tok_structure || self.tok_mult
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.master.len()
    }

    /// True when the session holds no samples.
    pub fn is_empty(&self) -> bool {
        self.master.len() == 0
    }

    /// Instrumentation of the last emission (the cold run until the
    /// first [`DeltaSession::refresh`]), including the per-stage
    /// `delta_skipped` / `delta_recomputed` counters.
    pub fn stage_report(&self) -> &StageReport {
        &self.last_report
    }

    /// Every held artifact of the last emission, indexed like
    /// [`Snapshot::stage_names`] — the raw form the typed accessors
    /// draw from, exposed for frame-level equivalence checks.
    pub fn artifacts(&self) -> &[Artifact] {
        &self.prev
    }

    /// The sanitize counters of the current sample set, as S1 would
    /// report them.
    pub fn sanitize_report(&self) -> SanitizeReport {
        SanitizeReport {
            input_paths: self.master.len(),
            output_paths: self.clean,
            ..self.counters
        }
    }

    /// The held S11 inference of the last emission.
    pub fn inference(&self) -> Result<Arc<Inference>, EngineError> {
        match &self.prev[stage_idx::S11_INFERENCE] {
            Artifact::Inference(i) => Ok(Arc::clone(i)),
            other => Err(held_type_err("inference", other)),
        }
    }

    /// The held Tier-1 clique of the last emission.
    pub fn clique(&self) -> Result<Arc<Vec<Asn>>, EngineError> {
        match &self.prev[stage_idx::S3_CLIQUE] {
            Artifact::Clique(c) => Ok(Arc::clone(c)),
            other => Err(held_type_err("clique", other)),
        }
    }

    /// The held degree table of the last emission.
    pub fn degrees(&self) -> Result<Arc<DegreeTable>, EngineError> {
        match &self.prev[stage_idx::S2_DEGREES] {
            Artifact::Degrees(d) => Ok(Arc::clone(d)),
            other => Err(held_type_err("degrees", other)),
        }
    }

    /// The held path arena of the last emission.
    pub fn arena(&self) -> Result<Arc<PathArena>, EngineError> {
        match &self.prev[stage_idx::PATH_ARENA] {
            Artifact::Arena(a) => Ok(Arc::clone(a)),
            other => Err(held_type_err("arena", other)),
        }
    }

    /// The held sanitized paths of the last emission.
    pub fn sanitized(&self) -> Result<Arc<SanitizedPaths>, EngineError> {
        match &self.prev[stage_idx::S1_SANITIZE] {
            Artifact::Sanitized(s) => Ok(Arc::clone(s)),
            other => Err(held_type_err("sanitized", other)),
        }
    }

    /// The three held cone flavors (recursive, BGP-observed,
    /// provider/peer-observed) of the last emission.
    pub fn cones(
        &self,
    ) -> Result<(Arc<CustomerCones>, Arc<CustomerCones>, Arc<CustomerCones>), EngineError> {
        let cone = |idx: usize| match &self.prev[idx] {
            Artifact::Cone(c) => Ok(Arc::clone(c)),
            other => Err(held_type_err("cone", other)),
        };
        Ok((
            cone(stage_idx::CONE_RECURSIVE)?,
            cone(stage_idx::CONE_BGP_OBSERVED)?,
            cone(stage_idx::CONE_PROVIDER_PEER)?,
        ))
    }

    /// Remove one sample's contributions from the evidence.
    fn retire(&mut self, vp: Asn, fate: &SampleFate) -> Result<(), EngineError> {
        if let Some(path) = &fate.clean {
            let hops: Vec<u32> = path.0.iter().map(|a| a.0).collect();
            match self.slots.remove_one(&hops) {
                Some(ev) => self.note(ev),
                None => {
                    return Err(EngineError::stage_failed(
                        "delta_session",
                        format!("retiring a clean path absent from the slot table: {path:?}"),
                    ))
                }
            }
            self.clean -= 1;
            self.degrees.remove(path);
            if let Some(key) = vp_key(vp, path) {
                decrement(&mut self.via, key);
                decrement(&mut self.totals, vp);
            }
        }
        sub_report(&mut self.counters, &fate.delta);
        Ok(())
    }

    /// Add one sample's contributions to the evidence.
    fn admit(&mut self, vp: Asn, fate: &SampleFate) {
        if let Some(path) = &fate.clean {
            let hops: Vec<u32> = path.0.iter().map(|a| a.0).collect();
            let ev = self.slots.add_one(&hops);
            self.note(ev);
            self.clean += 1;
            self.degrees.add(path);
            if let Some(key) = vp_key(vp, path) {
                *self.via.entry(key).or_default() += 1;
                *self.totals.entry(vp).or_default() += 1;
            }
        }
        add_report(&mut self.counters, &fate.delta);
    }

    fn note(&mut self, ev: PathEvent) {
        self.tok_mult = true;
        if matches!(ev, PathEvent::AddedDistinct | PathEvent::RemovedDistinct) {
            self.tok_structure = true;
        }
    }
}

/// Refcounted degree evidence: one counter per *directed* neighbor link
/// `(as, neighbor)` across clean sample paths, split into the two
/// adjacency flavors S2 distinguishes (any position vs. mid-path), plus
/// the per-AS distinct-neighbor tallies those links induce. Clean paths
/// are loop-free and prepending-compressed, so an AS occupies at most
/// one position per path and each directed link key contributes at most
/// once per sample — making the counters exact refcounts.
///
/// [`DegreeLedger::emit`] reassembles a [`DegreeTable`] content-equal
/// to [`DegreeTable::compute`] over the same clean paths: the observed
/// AS set is exactly "node degree > 0" (a length-1 path contributes no
/// links, matching the stage body), and the ranked order re-applies the
/// stage's comparator to that set.
#[derive(Clone, Default)]
struct DegreeLedger {
    node_links: FxHashMap<(Asn, Asn), u32>,
    transit_links: FxHashMap<(Asn, Asn), u32>,
    node_deg: FxHashMap<Asn, u32>,
    transit_deg: FxHashMap<Asn, u32>,
}

impl DegreeLedger {
    fn add(&mut self, clean: &AsPath) {
        let hops = &clean.0;
        for (i, &asn) in hops.iter().enumerate() {
            let mid = i > 0 && i + 1 < hops.len();
            if i > 0 {
                Self::link_up(&mut self.node_links, &mut self.node_deg, asn, hops[i - 1]);
                if mid {
                    Self::link_up(&mut self.transit_links, &mut self.transit_deg, asn, hops[i - 1]);
                }
            }
            if i + 1 < hops.len() {
                Self::link_up(&mut self.node_links, &mut self.node_deg, asn, hops[i + 1]);
                if mid {
                    Self::link_up(&mut self.transit_links, &mut self.transit_deg, asn, hops[i + 1]);
                }
            }
        }
    }

    fn remove(&mut self, clean: &AsPath) {
        let hops = &clean.0;
        for (i, &asn) in hops.iter().enumerate() {
            let mid = i > 0 && i + 1 < hops.len();
            if i > 0 {
                Self::link_down(&mut self.node_links, &mut self.node_deg, asn, hops[i - 1]);
                if mid {
                    Self::link_down(&mut self.transit_links, &mut self.transit_deg, asn, hops[i - 1]);
                }
            }
            if i + 1 < hops.len() {
                Self::link_down(&mut self.node_links, &mut self.node_deg, asn, hops[i + 1]);
                if mid {
                    Self::link_down(&mut self.transit_links, &mut self.transit_deg, asn, hops[i + 1]);
                }
            }
        }
    }

    fn link_up(
        links: &mut FxHashMap<(Asn, Asn), u32>,
        deg: &mut FxHashMap<Asn, u32>,
        asn: Asn,
        neighbor: Asn,
    ) {
        let c = links.entry((asn, neighbor)).or_insert(0);
        *c += 1;
        if *c == 1 {
            *deg.entry(asn).or_insert(0) += 1;
        }
    }

    fn link_down(
        links: &mut FxHashMap<(Asn, Asn), u32>,
        deg: &mut FxHashMap<Asn, u32>,
        asn: Asn,
        neighbor: Asn,
    ) {
        if let Some(c) = links.get_mut(&(asn, neighbor)) {
            *c -= 1;
            if *c == 0 {
                links.remove(&(asn, neighbor));
                decrement(deg, asn);
            }
        }
    }

    /// Assemble the degree table from the live counters — the S2
    /// provider body. Cost is `O(V log V)` in observed ASes, not
    /// `O(total hops)` like the stage body's re-scan.
    fn emit(&self) -> DegreeTable {
        let mut ranked: Vec<Asn> = self.node_deg.keys().copied().collect();
        let transit = |a: Asn| self.transit_deg.get(&a).copied().unwrap_or(0) as usize;
        let node = |a: Asn| self.node_deg.get(&a).copied().unwrap_or(0) as usize;
        // The stage's comparator verbatim: transit degree desc, node
        // degree desc, ASN asc.
        ranked.sort_by(|&a, &b| {
            transit(b)
                .cmp(&transit(a))
                .then_with(|| node(b).cmp(&node(a)))
                .then_with(|| a.cmp(&b))
        });
        DegreeTable::from_ranked_entries(ranked.into_iter().map(|a| (a, transit(a), node(a))))
    }
}

/// S6 evidence key of a clean sample: `(vp, first hop)` — but only when
/// the path actually starts at the vantage point, mirroring the stage
/// body's per-sample filter.
fn vp_key(vp: Asn, clean: &AsPath) -> Option<(Asn, Asn)> {
    let hops = &clean.0;
    if hops.len() < 2 || hops[0] != vp {
        return None;
    }
    Some((vp, hops[1]))
}

/// Decrement a counter map entry, dropping it at zero so the key set
/// stays exactly "pairs with live evidence" (the S6 candidate set).
fn decrement<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u32>, key: K) {
    if let Some(v) = map.get_mut(&key) {
        *v = v.saturating_sub(1);
        if *v == 0 {
            map.remove(&key);
        }
    }
}

fn add_report(dst: &mut SanitizeReport, d: &SanitizeReport) {
    dst.discarded_loops += d.discarded_loops;
    dst.discarded_reserved += d.discarded_reserved;
    dst.discarded_short += d.discarded_short;
    dst.compressed_prepending += d.compressed_prepending;
    dst.stripped_ixp += d.stripped_ixp;
}

fn sub_report(dst: &mut SanitizeReport, d: &SanitizeReport) {
    dst.discarded_loops -= d.discarded_loops;
    dst.discarded_reserved -= d.discarded_reserved;
    dst.discarded_short -= d.discarded_short;
    dst.compressed_prepending -= d.compressed_prepending;
    dst.stripped_ixp -= d.stripped_ixp;
}

fn held_type_err(expected: &'static str, got: &Artifact) -> EngineError {
    EngineError::ArtifactType {
        stage: "delta_session".to_string(),
        expected: expected.to_string(),
        got: got.kind().to_string(),
    }
}

/// The session's view handed to `Snapshot::delta_run` — disjoint field
/// borrows so the snapshot can hold the sample set while the providers
/// mutate the slot table.
struct SessionProvider<'s> {
    master: &'s PathSet,
    fates: &'s [SampleFate],
    clean: usize,
    counters: &'s SanitizeReport,
    slots: &'s mut MutablePathArena,
    via: &'s FxHashMap<(Asn, Asn), u32>,
    totals: &'s FxHashMap<Asn, u32>,
    ledger: &'s DegreeLedger,
    cfg: &'s InferenceConfig,
}

impl DeltaProvider for SessionProvider<'_> {
    fn sanitized(&mut self) -> Arc<SanitizedPaths> {
        let mut samples = Vec::with_capacity(self.clean);
        for (s, f) in self.master.iter().zip(self.fates) {
            if let Some(path) = &f.clean {
                samples.push(PathSample {
                    vp: s.vp,
                    prefix: s.prefix,
                    path: path.clone(),
                });
            }
        }
        let report = SanitizeReport {
            input_paths: self.master.len(),
            output_paths: samples.len(),
            ..*self.counters
        };
        Arc::new(SanitizedPaths { samples, report })
    }

    fn arena(&mut self) -> Arc<PathArena> {
        self.slots.canonicalize()
    }

    fn degrees(&mut self) -> Arc<DegreeTable> {
        Arc::new(self.ledger.emit())
    }

    fn vp_providers(
        &mut self,
        step: &Arc<StepState>,
        degrees: &Arc<DegreeTable>,
    ) -> Arc<StepState> {
        // Candidate order is pinned by the sort; the hash-map iteration
        // behind it is order-free.
        let mut candidates: Vec<(Asn, Asn)> = self.via.keys().copied().collect();
        candidates.sort();
        let mut state = StepState::clone(step);
        steps::classify_vp_providers(
            &candidates,
            |vp, w| self.via.get(&(vp, w)).copied().unwrap_or(0) as usize,
            |vp| self.totals.get(&vp).copied().unwrap_or(0) as usize,
            degrees,
            self.cfg,
            &mut state.rels,
            &mut state.report,
        );
        Arc::new(state)
    }
}
