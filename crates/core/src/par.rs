//! Deterministic fork-join helpers for the pipeline's fan-out stages.
//!
//! Every parallel stage in this crate follows the same shape: split the
//! work into contiguous chunks, process each chunk independently, and
//! reassemble the per-chunk results **in chunk order**. Because each
//! chunk's result depends only on its input (never on scheduling), the
//! assembled output is bit-identical for every thread count — the
//! guarantee the `parallel_determinism` integration test pins down.

use asrank_types::Parallelism;
use std::ops::Range;

/// Map `f` over contiguous chunks of `items` (each at least `min_chunk`
/// long), returning per-chunk results in chunk order.
pub fn map_chunks<T, R, F>(par: Parallelism, min_chunk: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = par.chunk_size(items.len(), min_chunk);
    if chunk >= items.len() {
        return vec![f(items)];
    }
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let f = &f;
                scope.spawn(move |_| f(c))
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panics, re-raises a child panic on the caller thread; swallowing it would return truncated results)
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
    // lint: allow(panics, scope only errs when a worker panicked; the join above already re-raised it)
    .expect("crossbeam scope failed")
}

/// Map `f` over contiguous index ranges covering `0..n`, returning
/// per-range results in range order. For stages whose work is indexed
/// rather than sliced (e.g. per-component materialization).
pub fn map_ranges<R, F>(par: Parallelism, min_chunk: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let chunk = par.chunk_size(n, min_chunk);
    if chunk >= n {
        return vec![f(0..n)];
    }
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                scope.spawn(move |_| f(r))
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(panics, re-raises a child panic on the caller thread; swallowing it would return truncated results)
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
    // lint: allow(panics, scope only errs when a worker panicked; the join above already re-raised it)
    .expect("crossbeam scope failed")
}

/// Fill a pre-sized output buffer in parallel, in place: the contiguous
/// index ranges of [`map_ranges`] each own the output span whose length
/// `span_len` reports, and `f(range, span)` writes that span directly.
/// Spans are carved off the front of `out` in range order, so they
/// partition it exactly when the caller's offset table is consistent —
/// no per-chunk buffers and no reassembly copy, which is the allocation
/// the arena build used to pay twice (`Vec` per chunk + `concat`).
///
/// Determinism is inherited from the range split: each span's content
/// depends only on its range, never on scheduling.
pub fn fill_ranges<T, S, F>(
    par: Parallelism,
    min_chunk: usize,
    n: usize,
    out: &mut [T],
    span_len: S,
    f: F,
) where
    T: Send,
    S: Fn(&Range<usize>) -> usize,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = par.chunk_size(n, min_chunk);
    if chunk >= n {
        f(0..n, out);
        return;
    }
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    let mut rest = out;
    let mut jobs: Vec<(Range<usize>, &mut [T])> = Vec::with_capacity(ranges.len());
    for r in ranges {
        let len = span_len(&r);
        let (span, tail) = rest.split_at_mut(len);
        jobs.push((r, span));
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "spans must partition the output buffer");
    crossbeam::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(r, span)| {
                let f = &f;
                scope.spawn(move |_| f(r, span))
            })
            .collect();
        for h in handles {
            // lint: allow(panics, re-raises a child panic on the caller thread; swallowing it would leave the output span half-written)
            h.join().expect("parallel worker panicked");
        }
    })
    // lint: allow(panics, scope only errs when a worker panicked; the join above already re-raised it)
    .expect("crossbeam scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_results_preserve_order() {
        let items: Vec<u64> = (0..1000).collect();
        for par in [
            Parallelism::sequential(),
            Parallelism::threads(3),
            Parallelism::auto(),
        ] {
            let sums = map_chunks(par, 1, &items, |c| c.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), 499_500);
            // First chunk must be the lowest items: order is positional.
            let first_len = items.len().div_ceil(par.effective()).max(1);
            let expected_first: u64 = items[..first_len.min(items.len())].iter().sum();
            assert_eq!(sums[0], expected_first);
        }
    }

    #[test]
    fn ranges_cover_everything_once() {
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let covered = map_ranges(par, 10, 105, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = covered.into_iter().flatten().collect();
            assert_eq!(flat, (0..105).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn empty_inputs_yield_no_chunks() {
        let out: Vec<u32> = map_chunks(Parallelism::auto(), 1, &[] as &[u8], |_| 1u32);
        assert!(out.is_empty());
        let out: Vec<u32> = map_ranges(Parallelism::auto(), 1, 0, |_| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let items: Vec<u32> = (0..777).map(|i| i * 7 % 253).collect();
        let run = |par| {
            map_chunks(par, 5, &items, |c| {
                c.iter().map(|&x| x as u64 * x as u64).collect::<Vec<u64>>()
            })
            .concat()
        };
        let seq = run(Parallelism::sequential());
        let par4 = run(Parallelism::threads(4));
        let auto = run(Parallelism::auto());
        assert_eq!(seq, par4);
        assert_eq!(seq, auto);
    }
}
