//! Borrowed zero-decode views over persisted artifact frames.
//!
//! [`super::decode_artifact`] rebuilds owned structures — the right call
//! when the artifact feeds further computation. A query tier has the
//! opposite profile: it touches a handful of entries per request out of
//! frames that may hold millions, so decoding (or even copying) the
//! payload per process is pure waste. The views here follow the
//! **checksum-once rule**:
//!
//! 1. `open()` validates the whole frame exactly once — magic, version,
//!    kind, declared length, FxHash checksum — and then walks the payload
//!    recording *where* each section lives (offset + entry count) while
//!    checking every structural invariant the accessors later index by
//!    (tag ranges, sort order, monotone bounds, in-range set ids). A
//!    frame that opens cleanly can be queried without further checks.
//! 2. Accessors read entries in place from `&[u8]` with explicit
//!    little-endian loads — no `#[repr]` punning, no alignment
//!    requirement, which is what makes the same code correct over heap
//!    buffers and `mmap`ed files alike.
//! 3. Point queries allocate nothing. Binary searches run directly over
//!    the packed sections (relationship entries are sorted by canonical
//!    link, interners and cone member sets by ASN — invariants the
//!    *writer* establishes and `open()` re-verifies).
//!
//! The serve tier additionally needs to hold a view across calls without
//! borrowing from itself. For the two hot kinds ([`InferenceView`],
//! [`ConeView`]) `open()` therefore also returns a `Copy` *layout* — the
//! section table with every offset frame-relative — and `from_layout()`
//! reconstitutes a view from `(bytes, layout)` for free. Reconstitution
//! never re-validates: the layout is only ever produced by `open()` over
//! the same bytes, and out-of-range layouts degrade to empty sections
//! rather than panicking.

use super::kind;
use crate::cone::ConeSize;
use crate::pipeline::InferenceReport;
use crate::sanitize::SanitizeReport;
use asrank_types::codec::{CodecError, Decoder, U32View, U64View, HEADER_LEN};
use asrank_types::prelude::*;

/// Byte size of one packed relationship entry: `(u32 a, u32 b, u8 tag)`.
const REL_STRIDE: usize = 9;
/// Byte size of one packed degree entry: `(u32 asn, u64 transit, u64 node)`.
const DEGREE_STRIDE: usize = 20;
/// Byte size of one packed cone-size entry: `(u64 ases, u64 prefixes, u64 addresses)`.
const SIZE_STRIDE: usize = 24;
/// Byte size of one packed link entry: `(u32 a, u32 b)`.
const LINK_STRIDE: usize = 8;

/// Location of one packed section inside a frame: `count` entries
/// starting at byte `off` *of the frame* (not the payload), so a layout
/// plus the original frame bytes is enough to rebuild any view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Section {
    /// Byte offset of the first entry from the start of the frame.
    pub off: usize,
    /// Number of entries.
    pub count: usize,
}

impl Section {
    /// The section's bytes out of `frame`, or an empty slice when the
    /// layout does not fit (a layout/bytes mismatch degrades to empty
    /// results, never a panic).
    fn slice<'a>(&self, frame: &'a [u8], stride: usize) -> &'a [u8] {
        self.count
            .checked_mul(stride)
            .and_then(|n| self.off.checked_add(n))
            .and_then(|end| frame.get(self.off..end))
            .unwrap_or(&[])
    }
}

/// Read a fixed-stride counted section: length prefix, then
/// `count * stride` raw bytes, returned with its frame-relative location.
fn section<'a>(
    d: &mut Decoder<'a>,
    stride: usize,
    context: &'static str,
) -> Result<(Section, &'a [u8]), CodecError> {
    let count = d.seq_len(stride, context)?;
    let off = HEADER_LEN + d.position();
    let raw = d.bytes(count * stride, context)?;
    Ok((Section { off, count }, raw))
}

/// Read a length-prefixed u32 sequence as a view plus its location.
fn u32_section<'a>(
    d: &mut Decoder<'a>,
    context: &'static str,
) -> Result<(Section, U32View<'a>), CodecError> {
    let (sec, raw) = section(d, 4, context)?;
    Ok((sec, U32View::new(raw)))
}

fn bad(context: &'static str, value: u64) -> CodecError {
    CodecError::BadValue { context, value }
}

fn rd_u32(raw: &[u8], off: usize) -> Option<u32> {
    let s = raw.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn rd_u64(raw: &[u8], off: usize) -> Option<u64> {
    let s = raw.get(off..off.checked_add(8)?)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Some(u64::from_le_bytes(b))
}

// ---------------------------------------------------------------------
// Relationship section
// ---------------------------------------------------------------------

/// Borrowed view over a relationship section: packed 9-byte entries
/// `(u32 a, u32 b, u8 tag)` sorted by canonical link — the serve tier's
/// hottest structure. Point lookups are one binary search over the
/// packed bytes; nothing is decoded.
#[derive(Debug, Clone, Copy)]
pub struct RelsView<'a> {
    raw: &'a [u8],
}

impl<'a> RelsView<'a> {
    /// Read the section, verifying every tag is a valid [`LinkRel`] and
    /// entries are strictly sorted by `(a, b)` — the invariant `get`'s
    /// binary search indexes by.
    fn read(d: &mut Decoder<'a>) -> Result<(Section, Self), CodecError> {
        let (sec, raw) = section(d, REL_STRIDE, "relationship count")?;
        let view = RelsView { raw };
        let mut prev: Option<(u32, u32)> = None;
        for i in 0..view.len() {
            let (a, b, tag) = view.raw_entry(i).ok_or(bad("relationship entry", i as u64))?;
            if tag > 3 {
                return Err(bad("link relationship", u64::from(tag)));
            }
            if a >= b {
                return Err(bad("link canonical order", u64::from(a)));
            }
            if prev.is_some_and(|p| p >= (a, b)) {
                return Err(bad("relationship sort order", i as u64));
            }
            prev = Some((a, b));
        }
        Ok((sec, view))
    }

    fn from_section(frame: &'a [u8], sec: Section) -> Self {
        RelsView {
            raw: sec.slice(frame, REL_STRIDE),
        }
    }

    /// Number of classified links.
    pub fn len(&self) -> usize {
        self.raw.len() / REL_STRIDE
    }

    /// True when no link is classified.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    fn raw_entry(&self, i: usize) -> Option<(u32, u32, u8)> {
        let off = i.checked_mul(REL_STRIDE)?;
        let a = rd_u32(self.raw, off)?;
        let b = rd_u32(self.raw, off + 4)?;
        let tag = *self.raw.get(off + 8)?;
        Some((a, b, tag))
    }

    fn rel_of(tag: u8) -> Option<LinkRel> {
        Some(match tag {
            0 => LinkRel::AC2pB,
            1 => LinkRel::AP2cB,
            2 => LinkRel::P2p,
            3 => LinkRel::S2s,
            _ => return None,
        })
    }

    /// Entry `i` in canonical-link sort order, or `None` past the end.
    pub fn entry(&self, i: usize) -> Option<(AsLink, LinkRel)> {
        let (a, b, tag) = self.raw_entry(i)?;
        Some((
            AsLink {
                a: Asn(a),
                b: Asn(b),
            },
            Self::rel_of(tag)?,
        ))
    }

    /// Iterate `(link, rel)` in canonical-link order (the deterministic
    /// twin of `RelationshipMap::iter`, which is hash-ordered).
    pub fn iter(&self) -> impl Iterator<Item = (AsLink, LinkRel)> + 'a {
        let raw = self.raw;
        raw.chunks_exact(REL_STRIDE).filter_map(|c| {
            let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            Some((
                AsLink {
                    a: Asn(a),
                    b: Asn(b),
                },
                Self::rel_of(c[8])?,
            ))
        })
    }

    /// The relationship on the link between `x` and `y`, expressed for
    /// the canonical orientation — mirror of `RelationshipMap::get`.
    pub fn get(&self, x: Asn, y: Asn) -> Option<LinkRel> {
        if x == y {
            return None;
        }
        let (a, b) = if x.0 < y.0 { (x.0, y.0) } else { (y.0, x.0) };
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (ea, eb, tag) = self.raw_entry(mid)?;
            if (ea, eb) < (a, b) {
                lo = mid + 1;
            } else if (ea, eb) > (a, b) {
                hi = mid;
            } else {
                return Self::rel_of(tag);
            }
        }
        None
    }

    /// The relationship between `x` and `y` from `x`'s point of view —
    /// mirror of `RelationshipMap::orientation`.
    pub fn orientation(&self, x: Asn, y: Asn) -> Option<Orientation> {
        let rel = self.get(x, y)?;
        let x_is_a = x.0 < y.0;
        Some(match (rel, x_is_a) {
            (LinkRel::AC2pB, true) | (LinkRel::AP2cB, false) => Orientation::Provider,
            (LinkRel::AC2pB, false) | (LinkRel::AP2cB, true) => Orientation::Customer,
            (LinkRel::P2p, _) => Orientation::Peer,
            (LinkRel::S2s, _) => Orientation::Sibling,
        })
    }
}

// ---------------------------------------------------------------------
// Degree section
// ---------------------------------------------------------------------

/// Borrowed view over a degree-table section: packed 20-byte entries
/// `(u32 asn, u64 transit, u64 node)` in ranked order (transit desc,
/// node desc, ASN asc) — *not* ASN order, so point lookups by ASN go
/// through an index the caller builds once (the serve snapshot does).
#[derive(Debug, Clone, Copy)]
pub struct DegreesView<'a> {
    raw: &'a [u8],
}

impl<'a> DegreesView<'a> {
    fn read(d: &mut Decoder<'a>) -> Result<(Section, Self), CodecError> {
        let (sec, raw) = section(d, DEGREE_STRIDE, "degree count")?;
        Ok((sec, DegreesView { raw }))
    }

    fn from_section(frame: &'a [u8], sec: Section) -> Self {
        DegreesView {
            raw: sec.slice(frame, DEGREE_STRIDE),
        }
    }

    /// Open a standalone DEGREES frame (stage `s2_degrees`).
    pub fn open_frame(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::DEGREES)?;
        let (_, view) = Self::read(&mut d)?;
        d.finish()?;
        Ok(view)
    }

    /// Number of ASes observed.
    pub fn len(&self) -> usize {
        self.raw.len() / DEGREE_STRIDE
    }

    /// True when no AS was observed.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Entry `i` in ranked order: `(asn, transit degree, node degree)`.
    pub fn entry(&self, i: usize) -> Option<(Asn, u64, u64)> {
        let off = i.checked_mul(DEGREE_STRIDE)?;
        Some((
            Asn(rd_u32(self.raw, off)?),
            rd_u64(self.raw, off + 4)?,
            rd_u64(self.raw, off + 12)?,
        ))
    }

    /// Iterate ranked entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, u64, u64)> + 'a {
        let raw = self.raw;
        (0..raw.len() / DEGREE_STRIDE).filter_map(move |i| {
            let off = i * DEGREE_STRIDE;
            Some((
                Asn(rd_u32(raw, off)?),
                rd_u64(raw, off + 4)?,
                rd_u64(raw, off + 12)?,
            ))
        })
    }
}

// ---------------------------------------------------------------------
// Cone-size section
// ---------------------------------------------------------------------

/// Borrowed view over packed 24-byte cone-size entries
/// `(u64 ases, u64 prefixes, u64 addresses)`.
#[derive(Debug, Clone, Copy)]
pub struct SizesView<'a> {
    raw: &'a [u8],
}

impl<'a> SizesView<'a> {
    /// Number of size entries (one per distinct cone set).
    pub fn len(&self) -> usize {
        self.raw.len() / SIZE_STRIDE
    }

    /// True when there are no sets.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Size entry `i`, or `None` past the end (or if a stored count
    /// overflows `usize`, impossible on 64-bit targets).
    pub fn get(&self, i: usize) -> Option<ConeSize> {
        let off = i.checked_mul(SIZE_STRIDE)?;
        Some(ConeSize {
            ases: usize::try_from(rd_u64(self.raw, off)?).ok()?,
            prefixes: usize::try_from(rd_u64(self.raw, off + 8)?).ok()?,
            addresses: rd_u64(self.raw, off + 16)?,
        })
    }
}

// ---------------------------------------------------------------------
// Variable-stride sample section
// ---------------------------------------------------------------------

/// One path sample read in place: scalars are decoded (they are the
/// iteration cursor), the hop list stays a borrowed [`U32View`].
#[derive(Debug, Clone, Copy)]
pub struct SampleRef<'a> {
    /// Vantage point that observed the path.
    pub vp: Asn,
    /// Announced prefix.
    pub prefix: Ipv4Prefix,
    /// AS hops, VP first.
    pub hops: U32View<'a>,
}

/// Borrowed view over a variable-stride sample section. `read` walks the
/// whole section once at open time (validating prefixes and hop-list
/// lengths); iteration then re-walks the same bytes infallibly.
#[derive(Debug, Clone, Copy)]
pub struct SamplesView<'a> {
    raw: &'a [u8],
    count: usize,
}

impl<'a> SamplesView<'a> {
    fn read(d: &mut Decoder<'a>) -> Result<Self, CodecError> {
        let count = d.seq_len(9, "sample count")?;
        let start = d.position();
        let tail = d.tail();
        for _ in 0..count {
            d.u32("sample vp")?;
            let network = d.u32("sample prefix network")?;
            let plen = d.u8("sample prefix length")?;
            if Ipv4Prefix::new(network, plen).is_err() {
                return Err(bad("sample prefix length", u64::from(plen)));
            }
            d.seq_u32_view("sample path")?;
        }
        let consumed = d.position() - start;
        Ok(SamplesView {
            raw: &tail[..consumed],
            count,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the section holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the samples in stored order.
    pub fn iter(&self) -> SamplesIter<'a> {
        SamplesIter {
            raw: self.raw,
            pos: 0,
            left: self.count,
        }
    }
}

/// Iterator over a validated [`SamplesView`].
#[derive(Debug)]
pub struct SamplesIter<'a> {
    raw: &'a [u8],
    pos: usize,
    left: usize,
}

impl<'a> Iterator for SamplesIter<'a> {
    type Item = SampleRef<'a>;

    fn next(&mut self) -> Option<SampleRef<'a>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let vp = rd_u32(self.raw, self.pos)?;
        let network = rd_u32(self.raw, self.pos + 4)?;
        let plen = *self.raw.get(self.pos + 8)?;
        let hop_count = usize::try_from(rd_u64(self.raw, self.pos + 9)?).ok()?;
        let hops_off = self.pos + 17;
        let hops = U32View::new(self.raw.get(hops_off..hops_off + hop_count * 4)?);
        self.pos = hops_off + hop_count * 4;
        Some(SampleRef {
            vp: Asn(vp),
            prefix: Ipv4Prefix::new(network, plen).ok()?,
            hops,
        })
    }
}

// ---------------------------------------------------------------------
// Frame views, per artifact kind
// ---------------------------------------------------------------------

/// View of a SANITIZED frame (stage `s1_sanitize`): counters plus the
/// surviving samples in place.
#[derive(Debug, Clone)]
pub struct SanitizedView<'a> {
    /// Sanitization counters (seven scalars, decoded at open).
    pub report: SanitizeReport,
    /// The sanitized samples, in place.
    pub samples: SamplesView<'a>,
}

impl<'a> SanitizedView<'a> {
    /// Validate and open a SANITIZED frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::SANITIZED)?;
        let report = super::get_sanitize_report(&mut d)?;
        let samples = SamplesView::read(&mut d)?;
        d.finish()?;
        Ok(SanitizedView { report, samples })
    }
}

/// View of a CLIQUE frame (stage `s3_clique`): the Tier-1 clique ASNs.
#[derive(Debug, Clone, Copy)]
pub struct CliqueView<'a> {
    /// Clique member ASNs in stored (ascending) order.
    pub asns: U32View<'a>,
}

impl<'a> CliqueView<'a> {
    /// Validate and open a CLIQUE frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::CLIQUE)?;
        let asns = d.seq_u32_view("clique asns")?;
        d.finish()?;
        Ok(CliqueView { asns })
    }
}

/// View of an ARENA frame (stage `path_arena`): interner + CSR paths.
#[derive(Debug, Clone, Copy)]
pub struct ArenaView<'a> {
    /// Interned ASNs, sorted ascending (dense id = index).
    pub interner: U32View<'a>,
    /// CSR offsets (`paths + 1` entries, monotone).
    pub offsets: U32View<'a>,
    /// Flat hop-id array.
    pub ids: U32View<'a>,
    /// Per-path multiplicity.
    pub multiplicity: U32View<'a>,
}

impl<'a> ArenaView<'a> {
    /// Validate and open an ARENA frame, re-checking the CSR invariants
    /// the accessors index by.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::ARENA)?;
        let interner = d.seq_u32_view("interner asns")?;
        let offsets = d.seq_u32_view("arena offsets")?;
        let ids = d.seq_u32_view("arena ids")?;
        let multiplicity = d.seq_u32_view("arena multiplicity")?;
        d.finish()?;
        if offsets.len() != multiplicity.len() + 1 && !(offsets.is_empty() && multiplicity.is_empty())
        {
            return Err(bad("arena offset count", offsets.len() as u64));
        }
        let mut prev = 0u32;
        for (i, o) in offsets.iter().enumerate() {
            if (i == 0 && o != 0) || o < prev || o as usize > ids.len() {
                return Err(bad("arena offsets", u64::from(o)));
            }
            prev = o;
        }
        if offsets.len() > 0 && prev as usize != ids.len() {
            return Err(bad("arena offsets", u64::from(prev)));
        }
        if ids.iter().any(|id| id as usize >= interner.len()) {
            return Err(bad("arena hop id", 0));
        }
        Ok(ArenaView {
            interner,
            offsets,
            ids,
            multiplicity,
        })
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.multiplicity.len()
    }

    /// Hop ids of distinct path `p`, or `None` out of range.
    pub fn path(&self, p: usize) -> Option<U32View<'a>> {
        let lo = self.offsets.get(p)? as usize;
        let hi = self.offsets.get(p + 1)? as usize;
        self.ids.slice(lo, hi)
    }
}

/// View of a KEPT frame (stage `s4_poison`): a packed kept-path bitmask.
#[derive(Debug, Clone, Copy)]
pub struct KeptView<'a> {
    discarded: usize,
    len: usize,
    words: U64View<'a>,
}

impl<'a> KeptView<'a> {
    /// Validate and open a KEPT frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::KEPT)?;
        let discarded = d.usize("kept discarded")?;
        let len = d.usize("kept length")?;
        let words = d.seq_u64_view("kept words")?;
        d.finish()?;
        if words.len() != len.div_ceil(64) {
            return Err(bad("kept word count", words.len() as u64));
        }
        Ok(KeptView {
            discarded,
            len,
            words,
        })
    }

    /// Paths discarded as poisoned.
    pub fn discarded(&self) -> usize {
        self.discarded
    }

    /// Length of the mask (one bit per distinct path).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether path `i` was kept, or `None` out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some((self.words.get(i / 64)? >> (i % 64)) & 1 == 1)
    }
}

/// View of a LINKS frame (stage `observed_links`): packed 8-byte
/// `(u32 a, u32 b)` canonical links.
#[derive(Debug, Clone, Copy)]
pub struct LinksView<'a> {
    raw: &'a [u8],
}

impl<'a> LinksView<'a> {
    /// Validate and open a LINKS frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::LINKS)?;
        let (_, raw) = section(&mut d, LINK_STRIDE, "link count")?;
        d.finish()?;
        Ok(LinksView { raw })
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.raw.len() / LINK_STRIDE
    }

    /// True when no link was observed.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Link `i` in stored order, or `None` past the end.
    pub fn entry(&self, i: usize) -> Option<AsLink> {
        let off = i.checked_mul(LINK_STRIDE)?;
        Some(AsLink {
            a: Asn(rd_u32(self.raw, off)?),
            b: Asn(rd_u32(self.raw, off + 4)?),
        })
    }

    /// Iterate the links in stored order.
    pub fn iter(&self) -> impl Iterator<Item = AsLink> + 'a {
        self.raw.chunks_exact(LINK_STRIDE).map(|c| AsLink {
            a: Asn(u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            b: Asn(u32::from_le_bytes([c[4], c[5], c[6], c[7]])),
        })
    }
}

/// View of a STEPS frame (stages S5–S10): intermediate relationship
/// state plus the running report.
#[derive(Debug, Clone)]
pub struct StepsView<'a> {
    /// Relationships inferred so far, sorted by canonical link.
    pub rels: RelsView<'a>,
    /// Running pipeline counters (decoded at open).
    pub report: InferenceReport,
}

impl<'a> StepsView<'a> {
    /// Validate and open a STEPS frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::STEPS)?;
        let (_, rels) = RelsView::read(&mut d)?;
        let report = super::get_inference_report(&mut d)?;
        d.finish()?;
        Ok(StepsView { rels, report })
    }
}

/// Frame-relative section table of an INFERENCE frame — everything a
/// serve snapshot must remember to rebuild an [`InferenceView`] over the
/// mapped bytes per query, free of self-borrows.
#[derive(Debug, Clone, Copy, Default)]
pub struct InferenceLayout {
    /// Sorted relationship entries.
    pub rels: Section,
    /// Clique ASNs.
    pub clique: Section,
    /// Ranked degree entries.
    pub degrees: Section,
}

/// View of an INFERENCE frame (stage `s11_inference`) — the serve tier's
/// primary frame: final relationships, clique, and degree table.
#[derive(Debug, Clone, Copy)]
pub struct InferenceView<'a> {
    /// Final relationship classification, sorted by canonical link.
    pub rels: RelsView<'a>,
    /// Tier-1 clique ASNs in stored (ascending) order.
    pub clique: U32View<'a>,
    /// Degree table in ranked order.
    pub degrees: DegreesView<'a>,
}

impl<'a> InferenceView<'a> {
    /// Validate and open an INFERENCE frame, returning the view, its
    /// reusable layout, and the decoded report (small scalars).
    pub fn open(bytes: &'a [u8]) -> Result<(Self, InferenceLayout, InferenceReport), CodecError> {
        let mut d = Decoder::open(bytes, kind::INFERENCE)?;
        let (rels_sec, rels) = RelsView::read(&mut d)?;
        let (clique_sec, clique) = u32_section(&mut d, "inference clique")?;
        let (deg_sec, degrees) = DegreesView::read(&mut d)?;
        let report = super::get_inference_report(&mut d)?;
        d.finish()?;
        Ok((
            InferenceView {
                rels,
                clique,
                degrees,
            },
            InferenceLayout {
                rels: rels_sec,
                clique: clique_sec,
                degrees: deg_sec,
            },
            report,
        ))
    }

    /// Rebuild a view from bytes + a layout previously produced by
    /// [`InferenceView::open`] over the same bytes. No re-validation.
    pub fn from_layout(frame: &'a [u8], layout: &InferenceLayout) -> Self {
        InferenceView {
            rels: RelsView::from_section(frame, layout.rels),
            clique: U32View::new(layout.clique.slice(frame, 4)),
            degrees: DegreesView::from_section(frame, layout.degrees),
        }
    }
}

/// Frame-relative section table of a CONE frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConeLayout {
    /// Sorted interned ASNs.
    pub interner: Section,
    /// Per-id set index.
    pub set_of: Section,
    /// Flat member arena.
    pub members: Section,
    /// Set bounds into the arena.
    pub bounds: Section,
    /// Per-set size triples.
    pub sizes: Section,
}

/// View of a CONE frame (any cone flavor): membership and size queries
/// in place, mirroring `CustomerCones` accessor semantics exactly.
#[derive(Debug, Clone, Copy)]
pub struct ConeView<'a> {
    interner: U32View<'a>,
    set_of: U32View<'a>,
    members: U32View<'a>,
    bounds: U32View<'a>,
    sizes: SizesView<'a>,
}

impl<'a> ConeView<'a> {
    /// Validate and open a CONE frame, re-checking the structural
    /// invariants `CustomerCones::from_raw_parts` enforces (plus sort
    /// order of the interner and of each member set, which the binary
    /// searches here index by).
    pub fn open(bytes: &'a [u8]) -> Result<(Self, ConeLayout), CodecError> {
        let mut d = Decoder::open(bytes, kind::CONE)?;
        let (interner_sec, interner) = u32_section(&mut d, "cone interner")?;
        let (set_of_sec, set_of) = u32_section(&mut d, "cone set_of")?;
        let (members_sec, members) = u32_section(&mut d, "cone members")?;
        let (bounds_sec, bounds) = u32_section(&mut d, "cone bounds")?;
        let (sizes_sec, sizes_raw) = section(&mut d, SIZE_STRIDE, "cone size count")?;
        d.finish()?;
        let sizes = SizesView { raw: sizes_raw };

        if set_of.len() != interner.len() {
            return Err(bad("cone set_of count", set_of.len() as u64));
        }
        let sets = sizes.len();
        let trivially_empty = sets == 0 && bounds.len() <= 1 && members.is_empty();
        if bounds.len() != sets + 1 && !trivially_empty {
            return Err(bad("cone bounds count", bounds.len() as u64));
        }
        match (bounds.get(0), bounds.get(bounds.len().wrapping_sub(1))) {
            (Some(first), Some(last)) => {
                if first != 0 || last as usize != members.len() {
                    return Err(bad("cone bounds span", u64::from(last)));
                }
            }
            _ => {
                if !members.is_empty() {
                    return Err(bad("cone bounds span", members.len() as u64));
                }
            }
        }
        let mut prev_bound = 0u32;
        for b in bounds.iter() {
            if b < prev_bound {
                return Err(bad("cone bounds order", u64::from(b)));
            }
            prev_bound = b;
        }
        if set_of.iter().any(|s| s as usize >= sets) {
            return Err(bad("cone set id", sets as u64));
        }
        let mut prev = None;
        for a in interner.iter() {
            if prev.is_some_and(|p| p >= a) {
                return Err(bad("cone interner order", u64::from(a)));
            }
            prev = Some(a);
        }
        for s in 0..sets {
            let (Some(lo), Some(hi)) = (bounds.get(s), bounds.get(s + 1)) else {
                continue;
            };
            let mut prev = None;
            for i in lo as usize..hi as usize {
                let m = members.get(i).ok_or(bad("cone member index", i as u64))?;
                if prev.is_some_and(|p| p >= m) {
                    return Err(bad("cone member order", u64::from(m)));
                }
                prev = Some(m);
            }
        }

        Ok((
            ConeView {
                interner,
                set_of,
                members,
                bounds,
                sizes,
            },
            ConeLayout {
                interner: interner_sec,
                set_of: set_of_sec,
                members: members_sec,
                bounds: bounds_sec,
                sizes: sizes_sec,
            },
        ))
    }

    /// Rebuild a view from bytes + a layout previously produced by
    /// [`ConeView::open`] over the same bytes. No re-validation.
    pub fn from_layout(frame: &'a [u8], layout: &ConeLayout) -> Self {
        ConeView {
            interner: U32View::new(layout.interner.slice(frame, 4)),
            set_of: U32View::new(layout.set_of.slice(frame, 4)),
            members: U32View::new(layout.members.slice(frame, 4)),
            bounds: U32View::new(layout.bounds.slice(frame, 4)),
            sizes: SizesView {
                raw: layout.sizes.slice(frame, SIZE_STRIDE),
            },
        }
    }

    /// Number of ASes covered.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when no cone was computed.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    fn id_of(&self, asn: Asn) -> Option<usize> {
        self.interner.binary_search(asn.0).ok()
    }

    /// Cone size of `asn` — mirror of `CustomerCones::size`, including
    /// the `{ases: 1, ..}` fallback for ASes without a computed cone.
    pub fn size(&self, asn: Asn) -> ConeSize {
        self.id_of(asn)
            .and_then(|id| self.sizes.get(self.set_of.get(id)? as usize))
            .unwrap_or(ConeSize {
                ases: 1,
                prefixes: 0,
                addresses: 0,
            })
    }

    /// Sorted cone membership of `asn` as a borrowed view (empty for
    /// unknown ASes) — mirror of `CustomerCones::members`.
    pub fn members(&self, asn: Asn) -> U32View<'a> {
        self.id_of(asn)
            .and_then(|id| {
                let set = self.set_of.get(id)? as usize;
                let lo = self.bounds.get(set)? as usize;
                let hi = self.bounds.get(set + 1)? as usize;
                self.members.slice(lo, hi)
            })
            .unwrap_or(U32View::new(&[]))
    }

    /// True when `y` is in `x`'s cone — mirror of
    /// `CustomerCones::contains`: one interner search plus one member
    /// search, no allocation.
    pub fn contains(&self, x: Asn, y: Asn) -> bool {
        self.members(x).binary_search(y.0).is_ok()
    }

    /// Iterate `(asn, cone size)` for every covered AS in ascending ASN
    /// order — mirror of `CustomerCones::iter_sizes`.
    pub fn iter_sizes(&self) -> impl Iterator<Item = (Asn, ConeSize)> + '_ {
        (0..self.len()).filter_map(move |id| {
            let asn = Asn(self.interner.get(id)?);
            let size = self.sizes.get(self.set_of.get(id)? as usize)?;
            Some((asn, size))
        })
    }
}

/// View of a PATHSET frame (the CLI's decoded-RIB ingest cache).
#[derive(Debug, Clone, Copy)]
pub struct PathsetView<'a> {
    /// The raw samples, in place.
    pub samples: SamplesView<'a>,
}

impl<'a> PathsetView<'a> {
    /// Validate and open a PATHSET frame.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::open(bytes, kind::PATHSET)?;
        let samples = SamplesView::read(&mut d)?;
        d.finish()?;
        Ok(PathsetView { samples })
    }
}

/// Compute [`super::pathset_fingerprint`] straight from a PATHSET frame,
/// without materializing a `PathSet`. This is what lets `asrank serve`
/// resolve exact stage cache keys from a RIB file plus cache directory
/// alone: hash the streamed samples exactly as the owned fingerprint
/// does, then feed the result to `engine::stage_disk_key`.
pub fn pathset_fingerprint_from_frame(bytes: &[u8]) -> Result<u64, CodecError> {
    use std::hash::Hasher;
    let v = PathsetView::open(bytes)?;
    let mut h = asrank_types::FxHasher::default();
    h.write_usize(v.samples.len());
    for s in v.samples.iter() {
        h.write_u32(s.vp.0);
        h.write_u32(s.prefix.network());
        h.write_u8(s.prefix.len());
        h.write_usize(s.hops.len());
        for a in s.hops.iter() {
            h.write_u32(a);
        }
    }
    Ok(h.finish())
}
