//! Persistent artifact codec + cache directory — the on-disk tier of the
//! staged engine's memoization.
//!
//! The engine (`crate::engine`) fingerprints every stage output but its
//! [`Artifact`] store is per-process. This module extends it across
//! process boundaries: every artifact kind has a compact binary encoding
//! over the [`asrank_types::codec`] frame format (length-prefixed,
//! version-worded, FxHash-checksummed), and [`CacheDir`] maps
//! `(stage name, cache key)` to one frame file under a user-supplied
//! `--cache-dir`.
//!
//! ## Determinism
//!
//! Cache files must be byte-identical for identical inputs regardless of
//! process, thread count, or `HashMap` seeding — that is what the
//! cold-vs-warm equivalence tests pin. Two rules make it so:
//!
//! * hash-backed collections are serialized in sorted order
//!   ([`RelationshipMap`] by canonical link, [`DegreeTable`] in its
//!   ranked order, which is itself deterministic);
//! * interners are serialized as their sorted ASN list and rebuilt with
//!   [`AsnInterner::from_ases`], which re-derives the identical dense-id
//!   assignment.
//!
//! ## Failure policy
//!
//! Every load-side failure — missing file, I/O error, bad magic, stale
//! version, flipped bit, impossible length, structural invariant
//! violation — is a **cache miss**, surfaced as `None` and followed by
//! recompute + rewrite. Nothing on this path panics; a cache directory
//! full of garbage degrades to exactly the uncached behavior.

pub mod view;

use crate::cone::{ConeSize, CustomerCones};
use crate::degree::DegreeTable;
use crate::engine::{Artifact, KeptPaths, StepState};
use crate::patharena::PathArena;
use crate::pipeline::{Inference, InferenceReport};
use crate::sanitize::{SanitizeReport, SanitizedPaths};
use asrank_types::codec::{CodecError, Decoder, Encoder};
use asrank_types::prelude::*;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock};

/// Artifact-kind tags stored in the frame header. Stable identifiers:
/// renumbering is a format change and requires a
/// [`asrank_types::codec::CODEC_VERSION`] bump.
pub mod kind {
    /// S1 output: sanitized samples + counters.
    pub const SANITIZED: u16 = 1;
    /// S2 output: degree table.
    pub const DEGREES: u16 = 2;
    /// S3 output: Tier-1 clique.
    pub const CLIQUE: u16 = 3;
    /// Interned path arena.
    pub const ARENA: u16 = 4;
    /// S4 output: kept-path mask.
    pub const KEPT: u16 = 5;
    /// Observed link list.
    pub const LINKS: u16 = 6;
    /// S5–S10 intermediate relationship state.
    pub const STEPS: u16 = 7;
    /// S11 output: full inference.
    pub const INFERENCE: u16 = 8;
    /// Any of the three cone flavors (distinguished by stage name).
    pub const CONE: u16 = 9;
    /// A raw [`asrank_types::PathSet`] — the CLI's decoded-RIB ingest
    /// cache, keyed by the MRT file's content hash.
    pub const PATHSET: u16 = 10;
}

/// The artifact-kind tag a given engine stage persists as, by stage
/// name. `None` for names that are not engine stages.
pub fn tag_for_stage(stage: &str) -> Option<u16> {
    Some(match stage {
        "s1_sanitize" => kind::SANITIZED,
        "s2_degrees" => kind::DEGREES,
        "s3_clique" => kind::CLIQUE,
        "path_arena" => kind::ARENA,
        "s4_poison" => kind::KEPT,
        "observed_links" => kind::LINKS,
        "s5_topdown" | "s6_vp_providers" | "s7_anomaly_repair" | "s8_stub_clique"
        | "s9_providerless" | "s10_p2p" => kind::STEPS,
        "s11_inference" => kind::INFERENCE,
        "cone_recursive" | "cone_bgp_observed" | "cone_provider_peer" => kind::CONE,
        _ => return None,
    })
}

/// Content fingerprint of a path set — the "input content hash" mixed
/// into every on-disk cache key. The engine's in-memory fingerprints
/// deliberately exclude path content (the store lives inside one
/// `Snapshot`, which is bound to one `PathSet`); a persistent key must
/// add it back or two different RIBs would collide.
pub fn pathset_fingerprint(paths: &PathSet) -> u64 {
    let mut h = asrank_types::FxHasher::default();
    h.write_usize(paths.len());
    for s in paths.iter() {
        h.write_u32(s.vp.0);
        h.write_u32(s.prefix.network());
        h.write_u8(s.prefix.len());
        h.write_usize(s.path.len());
        for a in s.path.iter() {
            h.write_u32(a.0);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Shared field encoders
// ---------------------------------------------------------------------

fn put_samples<'a, I: Iterator<Item = &'a PathSample>>(e: &mut Encoder, count: usize, samples: I) {
    e.usize(count);
    for s in samples {
        e.u32(s.vp.0);
        e.u32(s.prefix.network());
        e.u8(s.prefix.len());
        e.seq_u32(&s.path.0.iter().map(|a| a.0).collect::<Vec<u32>>());
    }
}

fn get_samples(d: &mut Decoder<'_>) -> Result<Vec<PathSample>, CodecError> {
    // Lower-bound each sample at 9 bytes (vp + network + len) to bound
    // the pre-sized allocation by the remaining payload.
    let count = d.seq_len(9, "sample count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let vp = Asn(d.u32("sample vp")?);
        let network = d.u32("sample prefix network")?;
        let plen = d.u8("sample prefix length")?;
        let prefix = Ipv4Prefix::new(network, plen).map_err(|_| CodecError::BadValue {
            context: "sample prefix length",
            value: u64::from(plen),
        })?;
        let hops = d.seq_u32("sample path")?;
        out.push(PathSample {
            vp,
            prefix,
            path: AsPath(hops.into_iter().map(Asn).collect()),
        });
    }
    Ok(out)
}

fn put_interner(e: &mut Encoder, interner: &AsnInterner) {
    e.seq_u32(&interner.iter().map(|(_, a)| a.0).collect::<Vec<u32>>());
}

fn get_interner(d: &mut Decoder<'_>) -> Result<AsnInterner, CodecError> {
    // `from_ases` sorts + dedups; a serialized interner is already both,
    // so the rebuild reproduces the identical dense-id assignment.
    Ok(AsnInterner::from_ases(
        d.seq_u32("interner asns")?.into_iter().map(Asn),
    ))
}

fn put_asns(e: &mut Encoder, asns: &[Asn]) {
    e.seq_u32(&asns.iter().map(|a| a.0).collect::<Vec<u32>>());
}

fn get_asns(d: &mut Decoder<'_>, context: &'static str) -> Result<Vec<Asn>, CodecError> {
    Ok(d.seq_u32(context)?.into_iter().map(Asn).collect())
}

fn put_rels(e: &mut Encoder, rels: &RelationshipMap) {
    // The map is hash-backed: canonical-link order here is what makes
    // the frame bytes independent of `RandomState` seeding.
    let mut entries: Vec<(AsLink, LinkRel)> = rels.iter().collect();
    entries.sort_unstable_by_key(|&(l, _)| l);
    e.usize(entries.len());
    for (link, rel) in entries {
        e.u32(link.a.0);
        e.u32(link.b.0);
        e.u8(match rel {
            LinkRel::AC2pB => 0,
            LinkRel::AP2cB => 1,
            LinkRel::P2p => 2,
            LinkRel::S2s => 3,
        });
    }
}

fn get_rels(d: &mut Decoder<'_>) -> Result<RelationshipMap, CodecError> {
    let count = d.seq_len(9, "relationship count")?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let a = Asn(d.u32("link a")?);
        let b = Asn(d.u32("link b")?);
        let tag = d.u8("link relationship")?;
        let rel = match tag {
            0 => LinkRel::AC2pB,
            1 => LinkRel::AP2cB,
            2 => LinkRel::P2p,
            3 => LinkRel::S2s,
            _ => {
                return Err(CodecError::BadValue {
                    context: "link relationship",
                    value: u64::from(tag),
                })
            }
        };
        entries.push((AsLink { a, b }, rel));
    }
    Ok(entries.into_iter().collect())
}

fn put_sanitize_report(e: &mut Encoder, r: &SanitizeReport) {
    for v in [
        r.input_paths,
        r.output_paths,
        r.discarded_loops,
        r.discarded_reserved,
        r.discarded_short,
        r.compressed_prepending,
        r.stripped_ixp,
    ] {
        e.usize(v);
    }
}

fn get_sanitize_report(d: &mut Decoder<'_>) -> Result<SanitizeReport, CodecError> {
    Ok(SanitizeReport {
        input_paths: d.usize("sanitize input_paths")?,
        output_paths: d.usize("sanitize output_paths")?,
        discarded_loops: d.usize("sanitize discarded_loops")?,
        discarded_reserved: d.usize("sanitize discarded_reserved")?,
        discarded_short: d.usize("sanitize discarded_short")?,
        compressed_prepending: d.usize("sanitize compressed_prepending")?,
        stripped_ixp: d.usize("sanitize stripped_ixp")?,
    })
}

fn put_inference_report(e: &mut Encoder, r: &InferenceReport) {
    put_sanitize_report(e, &r.sanitize);
    for v in [
        r.discarded_poisoned,
        r.c2p_from_topdown,
        r.conflicts,
        r.c2p_from_vps,
        r.repaired_anomalies,
        r.c2p_stub_clique,
        r.c2p_providerless,
        r.p2p_assigned,
        r.cycle_links,
        r.total_links,
    ] {
        e.usize(v);
    }
}

fn get_inference_report(d: &mut Decoder<'_>) -> Result<InferenceReport, CodecError> {
    Ok(InferenceReport {
        sanitize: get_sanitize_report(d)?,
        discarded_poisoned: d.usize("report discarded_poisoned")?,
        c2p_from_topdown: d.usize("report c2p_from_topdown")?,
        conflicts: d.usize("report conflicts")?,
        c2p_from_vps: d.usize("report c2p_from_vps")?,
        repaired_anomalies: d.usize("report repaired_anomalies")?,
        c2p_stub_clique: d.usize("report c2p_stub_clique")?,
        c2p_providerless: d.usize("report c2p_providerless")?,
        p2p_assigned: d.usize("report p2p_assigned")?,
        cycle_links: d.usize("report cycle_links")?,
        total_links: d.usize("report total_links")?,
    })
}

fn put_degrees(e: &mut Encoder, t: &DegreeTable) {
    e.usize(t.len());
    for &asn in t.ranked() {
        e.u32(asn.0);
        e.usize(t.transit_degree(asn));
        e.usize(t.node_degree(asn));
    }
}

fn get_degrees(d: &mut Decoder<'_>) -> Result<DegreeTable, CodecError> {
    let count = d.seq_len(20, "degree count")?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let asn = Asn(d.u32("degree asn")?);
        let transit = d.usize("transit degree")?;
        let node = d.usize("node degree")?;
        entries.push((asn, transit, node));
    }
    Ok(DegreeTable::from_ranked_entries(entries))
}

// ---------------------------------------------------------------------
// Artifact encode / decode
// ---------------------------------------------------------------------

/// Serialize an engine artifact into one self-contained frame.
pub fn encode_artifact(artifact: &Artifact) -> Vec<u8> {
    match artifact {
        Artifact::Sanitized(s) => {
            let mut e = Encoder::new(kind::SANITIZED);
            put_sanitize_report(&mut e, &s.report);
            put_samples(&mut e, s.samples.len(), s.samples.iter());
            e.finish()
        }
        Artifact::Degrees(t) => {
            let mut e = Encoder::new(kind::DEGREES);
            put_degrees(&mut e, t);
            e.finish()
        }
        Artifact::Clique(c) => {
            let mut e = Encoder::new(kind::CLIQUE);
            put_asns(&mut e, c);
            e.finish()
        }
        Artifact::Arena(a) => {
            let mut e = Encoder::new(kind::ARENA);
            put_interner(&mut e, a.interner());
            e.seq_u32(a.offsets());
            e.seq_u32(a.ids());
            e.seq_u32(&(0..a.len()).map(|p| a.multiplicity(p)).collect::<Vec<u32>>());
            e.finish()
        }
        Artifact::Kept(k) => {
            let mut e = Encoder::new(kind::KEPT);
            e.usize(k.discarded);
            e.usize(k.kept.len());
            let words: Vec<u64> = k
                .kept
                .chunks(64)
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .fold(0u64, |w, (i, &b)| w | (u64::from(b) << i))
                })
                .collect();
            e.seq_u64(&words);
            e.finish()
        }
        Artifact::Links(links) => {
            let mut e = Encoder::new(kind::LINKS);
            e.usize(links.len());
            for l in links.iter() {
                e.u32(l.a.0);
                e.u32(l.b.0);
            }
            e.finish()
        }
        Artifact::Steps(s) => {
            let mut e = Encoder::new(kind::STEPS);
            put_rels(&mut e, &s.rels);
            put_inference_report(&mut e, &s.report);
            e.finish()
        }
        Artifact::Inference(inf) => {
            let mut e = Encoder::new(kind::INFERENCE);
            put_rels(&mut e, &inf.relationships);
            put_asns(&mut e, &inf.clique);
            put_degrees(&mut e, &inf.degrees);
            put_inference_report(&mut e, &inf.report);
            e.finish()
        }
        Artifact::Cone(c) => {
            let mut e = Encoder::new(kind::CONE);
            let (interner, set_of, members, bounds, sizes) = c.raw_parts();
            put_interner(&mut e, interner);
            e.seq_u32(set_of);
            e.seq_u32(&members.iter().map(|a| a.0).collect::<Vec<u32>>());
            e.seq_u32(bounds);
            e.usize(sizes.len());
            for s in sizes {
                e.usize(s.ases);
                e.usize(s.prefixes);
                e.u64(s.addresses);
            }
            e.finish()
        }
    }
}

/// Decode a frame back into the artifact kind the caller expects.
/// Any mismatch or corruption is a [`CodecError`], never a panic.
pub fn decode_artifact(bytes: &[u8], expected: u16) -> Result<Artifact, CodecError> {
    let mut d = Decoder::open(bytes, expected)?;
    let artifact = match expected {
        kind::SANITIZED => {
            let report = get_sanitize_report(&mut d)?;
            let samples = get_samples(&mut d)?;
            Artifact::Sanitized(Arc::new(SanitizedPaths { samples, report }))
        }
        kind::DEGREES => Artifact::Degrees(Arc::new(get_degrees(&mut d)?)),
        kind::CLIQUE => Artifact::Clique(Arc::new(get_asns(&mut d, "clique asns")?)),
        kind::ARENA => {
            let interner = get_interner(&mut d)?;
            let offsets = d.seq_u32("arena offsets")?;
            let ids = d.seq_u32("arena ids")?;
            let multiplicity = d.seq_u32("arena multiplicity")?;
            let arena = PathArena::from_raw(interner, offsets, ids, multiplicity);
            // `from_raw` tolerates inconsistent parts (it is also the
            // corruption-fixture entry point); a cache load must not.
            if !arena.validate().is_empty() {
                return Err(CodecError::BadValue {
                    context: "arena invariants",
                    value: 0,
                });
            }
            Artifact::Arena(Arc::new(arena))
        }
        kind::KEPT => {
            let discarded = d.usize("kept discarded")?;
            let len = d.usize("kept length")?;
            let words = d.seq_u64("kept words")?;
            if words.len() != len.div_ceil(64) {
                return Err(CodecError::BadValue {
                    context: "kept word count",
                    value: words.len() as u64,
                });
            }
            let kept: Vec<bool> = (0..len)
                .map(|i| (words[i / 64] >> (i % 64)) & 1 == 1)
                .collect();
            Artifact::Kept(Arc::new(KeptPaths { kept, discarded }))
        }
        kind::LINKS => {
            let count = d.seq_len(8, "link count")?;
            let mut links = Vec::with_capacity(count);
            for _ in 0..count {
                let a = Asn(d.u32("link a")?);
                let b = Asn(d.u32("link b")?);
                links.push(AsLink { a, b });
            }
            Artifact::Links(Arc::new(links))
        }
        kind::STEPS => {
            let rels = get_rels(&mut d)?;
            let report = get_inference_report(&mut d)?;
            Artifact::Steps(Arc::new(StepState { rels, report }))
        }
        kind::INFERENCE => {
            let relationships = get_rels(&mut d)?;
            let clique = get_asns(&mut d, "inference clique")?;
            let degrees = get_degrees(&mut d)?;
            let report = get_inference_report(&mut d)?;
            Artifact::Inference(Arc::new(Inference {
                relationships,
                clique,
                degrees,
                report,
            }))
        }
        kind::CONE => {
            let interner = get_interner(&mut d)?;
            let set_of = d.seq_u32("cone set_of")?;
            let members: Vec<Asn> = d.seq_u32("cone members")?.into_iter().map(Asn).collect();
            let bounds = d.seq_u32("cone bounds")?;
            let count = d.seq_len(24, "cone size count")?;
            let mut sizes = Vec::with_capacity(count);
            for _ in 0..count {
                sizes.push(ConeSize {
                    ases: d.usize("cone size ases")?,
                    prefixes: d.usize("cone size prefixes")?,
                    addresses: d.u64("cone size addresses")?,
                });
            }
            let cones = CustomerCones::from_raw_parts(interner, set_of, members, bounds, sizes)
                .ok_or(CodecError::BadValue {
                    context: "cone invariants",
                    value: 0,
                })?;
            Artifact::Cone(Arc::new(cones))
        }
        other => {
            return Err(CodecError::BadValue {
                context: "artifact kind tag",
                value: u64::from(other),
            })
        }
    };
    d.finish()?;
    Ok(artifact)
}

/// Serialize a raw path set (the CLI's decoded-RIB cache entry).
pub fn encode_pathset(paths: &PathSet) -> Vec<u8> {
    let mut e = Encoder::new(kind::PATHSET);
    put_samples(&mut e, paths.len(), paths.iter());
    e.finish()
}

/// Decode a raw path set frame.
pub fn decode_pathset(bytes: &[u8]) -> Result<PathSet, CodecError> {
    let mut d = Decoder::open(bytes, kind::PATHSET)?;
    let samples = get_samples(&mut d)?;
    d.finish()?;
    Ok(samples.into_iter().collect())
}

// ---------------------------------------------------------------------
// Cache directory
// ---------------------------------------------------------------------

/// One on-disk artifact cache: a flat directory of frame files named
/// `{stage}-{key:016x}.bin`. Writes go through a temp file + rename so a
/// crashed process leaves either the old entry or the new one, never a
/// torn frame (and a torn frame would fail its checksum anyway).
///
/// Store failures (read-only directory, disk full) are swallowed — the
/// cache is strictly best-effort and never affects results.
#[derive(Debug, Clone)]
pub struct CacheDir {
    root: PathBuf,
}

impl CacheDir {
    /// A cache rooted at `root`. The directory is created lazily on the
    /// first store.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CacheDir { root: root.into() }
    }

    /// The cache root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry for `(stage, key)`.
    pub fn entry_path(&self, stage: &str, key: u64) -> PathBuf {
        self.root.join(format!("{stage}-{key:016x}.bin"))
    }

    /// Load one artifact; any failure (absent, unreadable, corrupt,
    /// version-mismatched, wrong kind) is `None`.
    pub fn load(&self, stage: &str, key: u64, expected: u16) -> Option<Artifact> {
        let bytes = std::fs::read(self.entry_path(stage, key)).ok()?;
        decode_artifact(&bytes, expected).ok()
    }

    /// Store one artifact; returns whether the write succeeded.
    pub fn store(&self, stage: &str, key: u64, artifact: &Artifact) -> bool {
        self.write_entry(stage, key, &encode_artifact(artifact))
    }

    /// Load a cached path set (the decoded-RIB ingest cache).
    pub fn load_paths(&self, stage: &str, key: u64) -> Option<PathSet> {
        let bytes = std::fs::read(self.entry_path(stage, key)).ok()?;
        decode_pathset(&bytes).ok()
    }

    /// Store a decoded path set; returns whether the write succeeded.
    pub fn store_paths(&self, stage: &str, key: u64, paths: &PathSet) -> bool {
        self.write_entry(stage, key, &encode_pathset(paths))
    }

    fn write_entry(&self, stage: &str, key: u64, bytes: &[u8]) -> bool {
        if std::fs::create_dir_all(&self.root).is_err() {
            return false;
        }
        let tmp = self
            .root
            .join(format!("{stage}-{key:016x}.tmp{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let dest = self.entry_path(stage, key);
        if std::fs::rename(&tmp, &dest).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }
}

// ---------------------------------------------------------------------
// Process-wide default
// ---------------------------------------------------------------------

fn process_slot() -> &'static RwLock<Option<PathBuf>> {
    static SLOT: OnceLock<RwLock<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Set (or clear) the process-wide default cache directory. New
/// `engine::Snapshot`s pick this up automatically, which is how the CLI
/// threads `--cache-dir` through call sites that construct snapshots
/// internally (`pipeline::infer`, `stability::jackknife`). Library users
/// who want explicit control use `Snapshot::with_cache_dir` instead and
/// never touch this.
pub fn set_process_cache_dir(dir: Option<PathBuf>) {
    // lint: allow(panics, a poisoned lock means another thread panicked mid-write of a PathBuf option; unrecoverable config state)
    *process_slot().write().expect("cache-dir lock poisoned") = dir;
}

/// The process-wide default cache directory, if one was set.
pub fn process_cache_dir() -> Option<PathBuf> {
    // lint: allow(panics, a poisoned lock means another thread panicked mid-write of a PathBuf option; unrecoverable config state)
    process_slot().read().expect("cache-dir lock poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Snapshot;
    use crate::pipeline::InferenceConfig;

    fn sample_paths() -> PathSet {
        let raw: &[&[u32]] = &[
            &[20, 10, 1, 2, 11, 21],
            &[20, 10, 1, 3, 11, 22],
            &[21, 11, 2, 1, 10, 20],
            &[22, 11, 3, 2, 10, 23],
            &[23, 10, 1, 2, 11, 21],
        ];
        raw.iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    /// Every stage's artifact survives an encode/decode roundtrip with
    /// byte-identical re-encoding (the canonical-form property the
    /// cold-vs-warm suite builds on).
    #[test]
    fn all_artifacts_roundtrip_bytewise() {
        let ps = sample_paths();
        let mut snap = Snapshot::new(&ps, InferenceConfig::default());
        snap.cones().expect("engine run");
        for name in Snapshot::stage_names() {
            let artifact = snap.materialize(name).expect("materialize");
            let tag = tag_for_stage(name).expect("stage tag");
            let bytes = encode_artifact(&artifact);
            let decoded = decode_artifact(&bytes, tag)
                .unwrap_or_else(|e| panic!("decode {name}: {e}"));
            assert_eq!(
                encode_artifact(&decoded),
                bytes,
                "{name} re-encode differs"
            );
        }
    }

    #[test]
    fn pathset_roundtrips() {
        let ps = sample_paths();
        let bytes = encode_pathset(&ps);
        let back = decode_pathset(&bytes).unwrap();
        assert_eq!(back.into_samples(), sample_paths().into_samples());
    }

    #[test]
    fn wrong_kind_and_garbage_are_misses() {
        let ps = sample_paths();
        let bytes = encode_pathset(&ps);
        assert!(decode_artifact(&bytes, kind::CLIQUE).is_err());
        assert!(decode_pathset(b"not a frame").is_err());
    }

    #[test]
    fn pathset_fingerprint_tracks_content() {
        let a = pathset_fingerprint(&sample_paths());
        assert_eq!(a, pathset_fingerprint(&sample_paths()));
        let mut other: Vec<PathSample> = sample_paths().into_samples();
        other[0].vp = Asn(9999);
        let other: PathSet = other.into_iter().collect();
        assert_ne!(a, pathset_fingerprint(&other));
    }

    #[test]
    fn cache_dir_store_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "asrank_persist_test_{}_roundtrip",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CacheDir::new(&dir);
        let ps = sample_paths();
        let mut snap = Snapshot::new(&ps, InferenceConfig::default());
        snap.inference().expect("engine run");
        let artifact = snap.materialize("s11_inference").unwrap();

        assert!(cache.load("s11_inference", 7, kind::INFERENCE).is_none());
        assert!(cache.store("s11_inference", 7, &artifact));
        let loaded = cache.load("s11_inference", 7, kind::INFERENCE).unwrap();
        assert_eq!(encode_artifact(&loaded), encode_artifact(&artifact));
        // Wrong key and wrong kind both miss.
        assert!(cache.load("s11_inference", 8, kind::INFERENCE).is_none());
        assert!(cache.load("s11_inference", 7, kind::CONE).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
