//! Customer cones — the paper's three definitions.
//!
//! The *customer cone* of AS `x` is the set of ASes `x` can reach by only
//! following provider→customer links: the part of the Internet that pays
//! (directly or indirectly) for `x`'s transit. The paper defines three
//! variants with different robustness/recall trade-offs:
//!
//! 1. **Recursive** — the transitive closure of inferred p2c links.
//!    Largest, but inflated by multihoming misinference: one wrong c2p
//!    link grafts an entire subtree into a cone.
//! 2. **BGP-observed** — `y ∈ cone(x)` only when an observed path
//!    actually descends from `x` to `y` through inferred p2c links.
//! 3. **Provider/peer observed** — `y ∈ cone(x)` only when a path shows
//!    `x` *announcing* `y` to one of `x`'s providers or peers; by
//!    Gao-Rexford export rules such announcements can only be customer
//!    routes, so this is the most conservative definition.
//!
//! Cones are measured in three units: member ASes, originated prefixes,
//! and originated address space.

use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Size of one AS's customer cone in the three units the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConeSize {
    /// Number of ASes in the cone (including the AS itself).
    pub ases: usize,
    /// Prefixes originated by cone members.
    pub prefixes: usize,
    /// IPv4 addresses covered by those prefixes.
    pub addresses: u64,
}

/// Customer cones for every AS under one of the three definitions.
#[derive(Debug, Clone, Default)]
pub struct CustomerCones {
    sizes: HashMap<Asn, ConeSize>,
    members: HashMap<Asn, Vec<Asn>>,
}

/// The three cone definitions computed side by side, for comparison
/// experiments.
#[derive(Debug, Clone)]
pub struct ConeSets {
    /// Transitive closure of p2c.
    pub recursive: CustomerCones,
    /// Path-witnessed descent.
    pub bgp_observed: CustomerCones,
    /// Announcement-witnessed (to provider or peer).
    pub provider_peer_observed: CustomerCones,
}

impl ConeSets {
    /// Compute all three definitions.
    pub fn compute(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        ConeSets {
            recursive: CustomerCones::recursive(rels, prefixes),
            bgp_observed: CustomerCones::bgp_observed(sanitized, rels, prefixes),
            provider_peer_observed: CustomerCones::provider_peer_observed(
                sanitized, rels, prefixes,
            ),
        }
    }
}

impl CustomerCones {
    /// Cone size of `asn`; an unknown AS has the trivial cone of itself
    /// with no known prefixes.
    pub fn size(&self, asn: Asn) -> ConeSize {
        self.sizes.get(&asn).copied().unwrap_or(ConeSize {
            ases: 1,
            prefixes: 0,
            addresses: 0,
        })
    }

    /// Sorted cone membership of `asn` (empty slice for unknown ASes).
    pub fn members(&self, asn: Asn) -> &[Asn] {
        self.members.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when `y` is in `x`'s cone.
    pub fn contains(&self, x: Asn, y: Asn) -> bool {
        self.members(x).binary_search(&y).is_ok()
    }

    /// All ASes with a computed cone.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.sizes.keys().copied()
    }

    /// Number of ASes covered.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no cone was computed.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The AS with the largest cone (by AS count), if any.
    pub fn largest(&self) -> Option<(Asn, ConeSize)> {
        self.sizes
            .iter()
            .max_by_key(|(&a, s)| (s.ases, std::cmp::Reverse(a)))
            .map(|(&a, &s)| (a, s))
    }

    /// **Recursive cone**: transitive closure of inferred p2c links.
    ///
    /// Cycles (inference errors) are collapsed first so the closure is
    /// well-defined: every member of a c2p cycle shares one cone.
    ///
    /// ```
    /// use asrank_core::CustomerCones;
    /// use asrank_types::{Asn, RelationshipMap};
    ///
    /// let mut rels = RelationshipMap::new();
    /// rels.insert_c2p(Asn(10), Asn(1));
    /// rels.insert_c2p(Asn(100), Asn(10));
    /// let cones = CustomerCones::recursive(&rels, None);
    /// assert_eq!(cones.size(Asn(1)).ases, 3);   // {1, 10, 100}
    /// assert!(cones.contains(Asn(1), Asn(100)));
    /// assert_eq!(cones.size(Asn(100)).ases, 1); // just itself
    /// ```
    pub fn recursive(
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        // Dense ids over all ASes in the relationship map.
        let mut interner = AsnInterner::new();
        let mut ases: Vec<Asn> = rels.ases().collect();
        ases.sort();
        for &a in &ases {
            interner.intern(a);
        }
        let n = interner.len();
        if n == 0 {
            return CustomerCones::default();
        }

        // customer → provider edge lists by dense id.
        let mut providers: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut customers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (c, p) in rels.c2p_pairs() {
            let ci = interner.get(c).expect("interned");
            let pi = interner.get(p).expect("interned");
            providers[ci as usize].push(pi);
            customers[pi as usize].push(ci);
        }

        // Collapse cycles exactly: Tarjan SCCs over the c2p digraph make
        // the condensation acyclic (a non-trivial SCC is an inference
        // error, but the closure must still be well-defined).
        let scc = crate::scc::tarjan(n, &providers);
        let comp = Components {
            of: scc.comp.clone(),
            count: scc.count,
        };

        // Condensed customer edges (comp → comp).
        let ncomp = comp.count;
        let mut comp_customers: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        let mut indegree: Vec<u32> = vec![0; ncomp]; // provider-side indegree
        for (p, cs) in customers.iter().enumerate() {
            for &c in cs {
                let pc = comp.of[p];
                let cc = comp.of[c as usize];
                if pc != cc {
                    comp_customers[pc as usize].push(cc);
                }
            }
        }
        for v in comp_customers.iter_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for cc in comp_customers.iter().flatten() {
            indegree[*cc as usize] += 1;
        }

        // Reverse topological order: providers after their customers —
        // process components with no *remaining providers pointing at
        // them*… easier: topologically order by provider→customer edges
        // and process in reverse.
        let mut order: Vec<u32> = Vec::with_capacity(ncomp);
        let mut queue: Vec<u32> = (0..ncomp as u32)
            .filter(|&c| indegree[c as usize] == 0)
            .collect();
        let mut indeg = indegree;
        while let Some(c) = queue.pop() {
            order.push(c);
            for &cc in &comp_customers[c as usize] {
                indeg[cc as usize] -= 1;
                if indeg[cc as usize] == 0 {
                    queue.push(cc);
                }
            }
        }
        debug_assert_eq!(order.len(), ncomp, "condensation must be acyclic");

        // Bitset DP in reverse order: cone(comp) = members ∪ cones of
        // customer comps.
        let words = n.div_ceil(64);
        let mut comp_members: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        for i in 0..n {
            comp_members[comp.of[i] as usize].push(i as u32);
        }
        let mut cones: Vec<Option<Vec<u64>>> = vec![None; ncomp];
        for &c in order.iter().rev() {
            let mut bits = vec![0u64; words];
            for &m in &comp_members[c as usize] {
                bits[(m / 64) as usize] |= 1u64 << (m % 64);
            }
            for &cc in &comp_customers[c as usize] {
                let child = cones[cc as usize]
                    .as_ref()
                    .expect("customers processed before providers");
                for (w, cw) in bits.iter_mut().zip(child) {
                    *w |= cw;
                }
            }
            cones[c as usize] = Some(bits);
        }

        // Materialize per-AS membership and sizes.
        let mut out = CustomerCones::default();
        for i in 0..n {
            let asn = interner.resolve(i as u32);
            let bits = cones[comp.of[i] as usize].as_ref().expect("computed");
            let mut members: Vec<Asn> = Vec::new();
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros();
                    members.push(interner.resolve((w * 64) as u32 + b));
                    word &= word - 1;
                }
            }
            members.sort();
            let size = measure(&members, prefixes);
            out.sizes.insert(asn, size);
            out.members.insert(asn, members);
        }
        out
    }

    /// **BGP-observed cone**: membership requires a witnessed descent.
    pub fn bgp_observed(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let mut sets: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let distinct: HashSet<&AsPath> = sanitized.paths().collect();
        for path in distinct {
            let hops = &path.0;
            // Mark which links descend (hops[j] is provider of hops[j+1]).
            for start in 0..hops.len().saturating_sub(1) {
                // Extend the maximal descending run beginning at `start`.
                let mut end = start;
                while end + 1 < hops.len() && rels.is_c2p(hops[end + 1], hops[end]) {
                    end += 1;
                }
                if end > start {
                    let owner = hops[start];
                    let set = sets.entry(owner).or_default();
                    for &below in &hops[start + 1..=end] {
                        set.insert(below);
                    }
                }
            }
        }
        Self::from_sets(sanitized, sets, prefixes)
    }

    /// **Provider/peer observed cone**: membership requires `x` to have
    /// been seen announcing the member to a provider or peer.
    pub fn provider_peer_observed(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let mut sets: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let distinct: HashSet<&AsPath> = sanitized.paths().collect();
        for path in distinct {
            let hops = &path.0;
            for i in 1..hops.len() {
                let x = hops[i];
                let w = hops[i - 1];
                // w received the route from x; if w is x's provider or
                // peer, everything beyond x is x's customer cone.
                let o = rels.orientation(x, w);
                if matches!(o, Some(Orientation::Provider) | Some(Orientation::Peer)) {
                    let set = sets.entry(x).or_default();
                    for &below in &hops[i + 1..] {
                        set.insert(below);
                    }
                }
            }
        }
        Self::from_sets(sanitized, sets, prefixes)
    }

    fn from_sets(
        sanitized: &SanitizedPaths,
        sets: HashMap<Asn, HashSet<Asn>>,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let mut out = CustomerCones::default();
        // Every observed AS has at least the trivial cone of itself.
        let mut all: HashSet<Asn> = HashSet::new();
        for p in sanitized.paths() {
            all.extend(p.iter());
        }
        for asn in all {
            let mut members: Vec<Asn> = sets
                .get(&asn)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            members.push(asn);
            members.sort();
            members.dedup();
            let size = measure(&members, prefixes);
            out.sizes.insert(asn, size);
            out.members.insert(asn, members);
        }
        out
    }
}

/// Weigh a member list in the three units.
fn measure(members: &[Asn], prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>) -> ConeSize {
    let mut size = ConeSize {
        ases: members.len(),
        prefixes: 0,
        addresses: 0,
    };
    if let Some(table) = prefixes {
        for m in members {
            if let Some(pfx) = table.get(m) {
                size.prefixes += pfx.len();
                size.addresses += pfx.iter().map(Ipv4Prefix::address_count).sum::<u64>();
            }
        }
    }
    size
}

/// Component labeling of the c2p digraph (dense ids).
struct Components {
    of: Vec<u32>,
    count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    /// 1 ═ 2 clique; 10→1, 20→2, 100→10, 200→20; 100 multihomes to 20.
    fn rels() -> RelationshipMap {
        let mut r = RelationshipMap::new();
        r.insert_p2p(Asn(1), Asn(2));
        r.insert_c2p(Asn(10), Asn(1));
        r.insert_c2p(Asn(20), Asn(2));
        r.insert_c2p(Asn(100), Asn(10));
        r.insert_c2p(Asn(200), Asn(20));
        r.insert_c2p(Asn(100), Asn(20));
        r
    }

    fn paths(raw: &[&[u32]]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn recursive_cone_closure() {
        let cones = CustomerCones::recursive(&rels(), None);
        assert_eq!(cones.members(Asn(1)), &[Asn(1), Asn(10), Asn(100)]);
        assert_eq!(
            cones.members(Asn(2)),
            &[Asn(2), Asn(20), Asn(100), Asn(200)]
        );
        assert_eq!(cones.members(Asn(100)), &[Asn(100)]);
        assert_eq!(cones.size(Asn(2)).ases, 4);
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(!cones.contains(Asn(1), Asn(200)));
    }

    #[test]
    fn recursive_cone_handles_cycles() {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(1), Asn(2));
        r.insert_c2p(Asn(2), Asn(3));
        r.insert_c2p(Asn(3), Asn(1)); // cycle 1→2→3→1
        r.insert_c2p(Asn(9), Asn(1)); // 9 below the cycle
        let cones = CustomerCones::recursive(&r, None);
        // All cycle members share one cone containing the cycle + 9.
        for a in [1u32, 2, 3] {
            assert_eq!(
                cones.members(Asn(a)),
                &[Asn(1), Asn(2), Asn(3), Asn(9)],
                "cycle member {a}"
            );
        }
        assert_eq!(cones.members(Asn(9)), &[Asn(9)]);
    }

    #[test]
    fn prefix_weighting() {
        let mut prefixes: HashMap<Asn, Vec<Ipv4Prefix>> = HashMap::new();
        prefixes.insert(Asn(100), vec!["10.0.0.0/24".parse().unwrap()]);
        prefixes.insert(
            Asn(10),
            vec![
                "11.0.0.0/24".parse().unwrap(),
                "12.0.0.0/23".parse().unwrap(),
            ],
        );
        let cones = CustomerCones::recursive(&rels(), Some(&prefixes));
        let s1 = cones.size(Asn(1)); // cone {1,10,100}
        assert_eq!(s1.prefixes, 3);
        assert_eq!(s1.addresses, 256 + 256 + 512);
        let s100 = cones.size(Asn(100));
        assert_eq!(s100.prefixes, 1);
        assert_eq!(s100.addresses, 256);
    }

    #[test]
    fn bgp_observed_requires_witnessed_descent() {
        let r = rels();
        // Only one path descends 1 → 10 → 100; nobody ever observes
        // 20 → 100, so 100 is NOT in 20's BGP-observed cone even though
        // the recursive cone contains it.
        let p = paths(&[&[200, 20, 2, 1, 10, 100]]);
        let cones = CustomerCones::bgp_observed(&p, &r, None);
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(cones.contains(Asn(1), Asn(10)));
        assert!(cones.contains(Asn(10), Asn(100)));
        assert!(!cones.contains(Asn(20), Asn(100)), "descent not witnessed");
        // 2 receives the route from peer 1 — 1's announcement, not 2's
        // descent… 2→1 is p2p so the descent run stops at 2.
        assert!(!cones.contains(Asn(2), Asn(100)));
        // Recursive ⊇ BGP-observed.
        let rec = CustomerCones::recursive(&r, None);
        for asn in cones.ases() {
            let obs = cones.members(asn);
            for m in obs {
                assert!(
                    rec.contains(asn, *m),
                    "{m} in observed but not recursive cone of {asn}"
                );
            }
        }
    }

    #[test]
    fn provider_peer_observed_uses_announcements() {
        let r = rels();
        // Path seen at VP 200: 200 ← 20 ← 2 ← 1 ← 10 ← 100 i.e. hops
        // [200, 20, 2, 1, 10, 100]. Announcements witnessed:
        //  • 20 → 200? 200 is 20's *customer* (receives everything): no.
        //  • 2 → 20: 20's view of 2 is Provider ⇒ everything after 2
        //    ([1, 10, 100]) would be 2's cone — but wait, 2 announced the
        //    route *down* to 20… the rule keys on hops[i-1] being the
        //    provider/peer OF hops[i]:
        //    i=1: x=20, w=200: orientation(20,200)=Customer → skip.
        //    i=2: x=2, w=20: orientation(2,20)=Customer → skip.
        //    i=3: x=1, w=2: orientation(1,2)=Peer → cone(1) ⊇ {10,100}. ✓
        //    i=4: x=10, w=1: orientation(10,1)=Provider → cone(10) ⊇ {100}. ✓
        let p = paths(&[&[200, 20, 2, 1, 10, 100]]);
        let cones = CustomerCones::provider_peer_observed(&p, &r, None);
        assert!(cones.contains(Asn(1), Asn(10)));
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(cones.contains(Asn(10), Asn(100)));
        assert!(!cones.contains(Asn(2), Asn(1)), "peer is not in the cone");
        assert!(!cones.contains(Asn(20), Asn(2)));
        assert_eq!(cones.size(Asn(200)).ases, 1, "VP has trivial cone");
    }

    #[test]
    fn largest_reports_biggest_cone() {
        let cones = CustomerCones::recursive(&rels(), None);
        let (asn, size) = cones.largest().unwrap();
        assert_eq!(asn, Asn(2));
        assert_eq!(size.ases, 4);
    }

    #[test]
    fn empty_inputs() {
        let cones = CustomerCones::recursive(&RelationshipMap::new(), None);
        assert!(cones.is_empty());
        assert_eq!(cones.size(Asn(7)).ases, 1, "unknown AS has trivial cone");
        assert!(cones.members(Asn(7)).is_empty());
    }
}
