//! Customer cones — the paper's three definitions.
//!
//! The *customer cone* of AS `x` is the set of ASes `x` can reach by only
//! following provider→customer links: the part of the Internet that pays
//! (directly or indirectly) for `x`'s transit. The paper defines three
//! variants with different robustness/recall trade-offs:
//!
//! 1. **Recursive** — the transitive closure of inferred p2c links.
//!    Largest, but inflated by multihoming misinference: one wrong c2p
//!    link grafts an entire subtree into a cone.
//! 2. **BGP-observed** — `y ∈ cone(x)` only when an observed path
//!    actually descends from `x` to `y` through inferred p2c links.
//! 3. **Provider/peer observed** — `y ∈ cone(x)` only when a path shows
//!    `x` *announcing* `y` to one of `x`'s providers or peers; by
//!    Gao-Rexford export rules such announcements can only be customer
//!    routes, so this is the most conservative definition.
//!
//! Cones are measured in three units: member ASes, originated prefixes,
//! and originated address space.
//!
//! ## Representation and performance
//!
//! All three computations run over **dense ids** from a bulk-built
//! [`AsnInterner`] (ids ascend with ASN, so resolved member lists are
//! born sorted). The recursive closure first tries a Kahn topological
//! sort of the p2c digraph directly: c2p cycles are rare inference
//! errors, so the common case skips Tarjan/condensation entirely and
//! every AS is its own component. When a cycle does exist, Tarjan SCCs
//! collapse it and the same dynamic program runs over the condensation.
//! The DP itself ([`closure_dp`]) is output-sensitive: stub leaves store
//! nothing, small cones live as sorted id runs in one shared arena, and
//! only the transit core pays for full-universe [`BitSet`]s whose unions
//! are word-parallel `|=` over packed `u64`s. Every AS of an SCC shares
//! one materialized member list (`set_of` indirection), and
//! prefix/address weights come from per-id lookup tables instead of hash
//! probes per member. Materialization fans out over worker threads
//! ([`Parallelism`]); results are identical for every thread count. The
//! pre-optimization HashSet implementation survives as
//! [`CustomerCones::recursive_reference`] — the property-test oracle and
//! the benchmark baseline.
//!
//! The two path-observed cones run over the shared [`PathArena`] as a
//! **single deterministic parallel sweep**: worker shards scan
//! contiguous ranges of the arena's distinct paths once, emit packed
//! `(cone-root, member)` pairs, and a sort+dedup merge builds the flat
//! member sets — bit-identical for every thread count. The pre-arena
//! per-AS-rescan engines survive as
//! [`CustomerCones::bgp_observed_reference`] /
//! [`CustomerCones::provider_peer_observed_reference`], the proptest
//! oracles and benchmark baselines for the recorded speedups.

use crate::csr::Csr;
use crate::par;
use crate::patharena::PathArena;
use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Size of one AS's customer cone in the three units the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConeSize {
    /// Number of ASes in the cone (including the AS itself).
    pub ases: usize,
    /// Prefixes originated by cone members.
    pub prefixes: usize,
    /// IPv4 addresses covered by those prefixes.
    pub addresses: u64,
}

/// Customer cones for every AS under one of the three definitions.
///
/// Internally: dense ids from an [`AsnInterner`], a `set_of` indirection
/// mapping each AS to its member set (ASes of one c2p cycle share a set),
/// and per-set sizes. Member lists are sorted by ASN.
#[derive(Debug, Clone, Default)]
pub struct CustomerCones {
    interner: AsnInterner,
    /// Dense AS id → index into `bounds` / `sizes`.
    set_of: Vec<u32>,
    /// Member lists of every set, concatenated in set order and sorted
    /// within each set. One shared arena instead of a heap `Vec` per set
    /// — tens of thousands of small allocations otherwise dominate
    /// construction.
    members_flat: Vec<Asn>,
    /// Set `i` spans `members_flat[bounds[i]..bounds[i + 1]]`.
    bounds: Vec<u32>,
    /// Measured size of each set, aligned with `bounds`.
    sizes: Vec<ConeSize>,
}

/// The three cone definitions computed side by side, for comparison
/// experiments.
#[derive(Debug, Clone)]
pub struct ConeSets {
    /// Transitive closure of p2c.
    pub recursive: CustomerCones,
    /// Path-witnessed descent.
    pub bgp_observed: CustomerCones,
    /// Announcement-witnessed (to provider or peer).
    pub provider_peer_observed: CustomerCones,
}

impl ConeSets {
    /// Compute all three definitions.
    pub fn compute(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        Self::compute_with(sanitized, rels, prefixes, Parallelism::auto())
    }

    /// [`ConeSets::compute`] with an explicit thread budget. The result
    /// is identical for every `par` value.
    pub fn compute_with(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        // One shared arena: both observed cones read the same interned,
        // deduplicated paths instead of re-parsing them independently.
        let arena = PathArena::build_with(sanitized, par);
        Self::compute_from_arena(&arena, rels, prefixes, par)
    }

    /// Compute all three definitions over a prebuilt [`PathArena`]
    /// (e.g. the one the inference pipeline already constructed).
    pub fn compute_from_arena(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        ConeSets {
            recursive: CustomerCones::recursive_with(rels, prefixes, par),
            bgp_observed: CustomerCones::bgp_observed_from_arena(arena, rels, prefixes, par),
            provider_peer_observed: CustomerCones::provider_peer_observed_from_arena(
                arena, rels, prefixes, par,
            ),
        }
    }
}

/// Pre-dedup member bound below which a cone is kept as a sorted id vec
/// instead of a full-universe bitset. Two cache lines of ids — merging at
/// this size is cheaper than allocating and sweeping `n/64` words.
const SMALL_CONE: usize = 128;

/// DP-internal cone representation; leaf components (no customers) are
/// represented by absence — their cone is their member list.
enum Cone {
    /// Sorted, deduplicated member ids of a small cone, stored as a
    /// `start..end` range into a shared id arena (no per-cone heap).
    Small(u32, u32),
    /// Full-universe bitset for the big transit-core cones.
    Big(BitSet),
}

/// Per-dense-id prefix weights, precomputed once so measuring a cone is a
/// table walk instead of a hash probe per member.
struct PrefixWeights {
    count: Vec<u32>,
    addresses: Vec<u64>,
}

impl PrefixWeights {
    fn build(interner: &AsnInterner, prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>) -> Self {
        let n = interner.len();
        let mut count = vec![0u32; n];
        let mut addresses = vec![0u64; n];
        if let Some(table) = prefixes {
            for (id, asn) in interner.iter() {
                if let Some(pfx) = table.get(&asn) {
                    count[id as usize] = dense_id(pfx.len());
                    addresses[id as usize] =
                        pfx.iter().map(Ipv4Prefix::address_count).sum::<u64>();
                }
            }
        }
        PrefixWeights { count, addresses }
    }
}

impl CustomerCones {
    /// Cone size of `asn`; an unknown AS has the trivial cone of itself
    /// with no known prefixes.
    pub fn size(&self, asn: Asn) -> ConeSize {
        match self.interner.get(asn) {
            Some(id) => self.sizes[self.set_of[id as usize] as usize],
            None => ConeSize {
                ases: 1,
                prefixes: 0,
                addresses: 0,
            },
        }
    }

    /// Sorted cone membership of `asn` (empty slice for unknown ASes).
    pub fn members(&self, asn: Asn) -> &[Asn] {
        match self.interner.get(asn) {
            Some(id) => self.set(self.set_of[id as usize]),
            None => &[],
        }
    }

    /// Member slice of set `s` out of the shared arena.
    fn set(&self, s: u32) -> &[Asn] {
        &self.members_flat[self.bounds[s as usize] as usize..self.bounds[s as usize + 1] as usize]
    }

    /// True when `y` is in `x`'s cone.
    pub fn contains(&self, x: Asn, y: Asn) -> bool {
        self.members(x).binary_search(&y).is_ok()
    }

    /// All ASes with a computed cone, in ascending ASN order.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.interner.iter().map(|(_, a)| a)
    }

    /// Iterate `(asn, cone size)` for every covered AS in ascending ASN
    /// order — the bulk accessor for whole-distribution experiments
    /// (CCDFs, rank correlations), replacing a hash lookup per AS.
    pub fn iter_sizes(&self) -> impl Iterator<Item = (Asn, ConeSize)> + '_ {
        self.interner
            .iter()
            .map(|(id, a)| (a, self.sizes[self.set_of[id as usize] as usize]))
    }

    /// Iterate `(asn, sorted members)` for every covered AS in ascending
    /// ASN order.
    pub fn iter_members(&self) -> impl Iterator<Item = (Asn, &[Asn])> + '_ {
        self.interner
            .iter()
            .map(|(id, a)| (a, self.set(self.set_of[id as usize])))
    }

    /// Number of ASes covered.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when no cone was computed.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// The AS with the largest cone (by AS count, ties to the lowest
    /// ASN), if any.
    pub fn largest(&self) -> Option<(Asn, ConeSize)> {
        self.iter_sizes()
            .max_by_key(|&(a, s)| (s.ases, std::cmp::Reverse(a)))
    }

    /// Decompose into the raw columnar parts the persistent artifact
    /// codec serializes: `(interner, set_of, members_flat, bounds,
    /// sizes)`. Inverse of [`CustomerCones::from_raw_parts`].
    pub fn raw_parts(&self) -> (&AsnInterner, &[u32], &[Asn], &[u32], &[ConeSize]) {
        (
            &self.interner,
            &self.set_of,
            &self.members_flat,
            &self.bounds,
            &self.sizes,
        )
    }

    /// Reassemble cones from raw columnar parts, re-checking every
    /// structural invariant the accessors index by (set ids in range,
    /// bounds monotone and spanning the member arena). Returns `None`
    /// for inconsistent parts — the codec treats that as a corrupt
    /// cache file and recomputes.
    pub fn from_raw_parts(
        interner: AsnInterner,
        set_of: Vec<u32>,
        members_flat: Vec<Asn>,
        bounds: Vec<u32>,
        sizes: Vec<ConeSize>,
    ) -> Option<CustomerCones> {
        let sets = sizes.len();
        if set_of.len() != interner.len() {
            return None;
        }
        let trivially_empty = sets == 0 && bounds.len() <= 1 && members_flat.is_empty();
        if bounds.len() != sets + 1 && !trivially_empty {
            return None;
        }
        if let (Some(&first), Some(&last)) = (bounds.first(), bounds.last()) {
            if first != 0 || last as usize != members_flat.len() {
                return None;
            }
        } else if !members_flat.is_empty() {
            return None;
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if set_of.iter().any(|&s| (s as usize) >= sets) {
            return None;
        }
        Some(CustomerCones {
            interner,
            set_of,
            members_flat,
            bounds,
            sizes,
        })
    }

    /// **Recursive cone**: transitive closure of inferred p2c links.
    ///
    /// Cycles (inference errors) are collapsed first so the closure is
    /// well-defined: every member of a c2p cycle shares one cone.
    ///
    /// ```
    /// use asrank_core::CustomerCones;
    /// use asrank_types::{Asn, RelationshipMap};
    ///
    /// let mut rels = RelationshipMap::new();
    /// rels.insert_c2p(Asn(10), Asn(1));
    /// rels.insert_c2p(Asn(100), Asn(10));
    /// let cones = CustomerCones::recursive(&rels, None);
    /// assert_eq!(cones.size(Asn(1)).ases, 3);   // {1, 10, 100}
    /// assert!(cones.contains(Asn(1), Asn(100)));
    /// assert_eq!(cones.size(Asn(100)).ases, 1); // just itself
    /// ```
    pub fn recursive(
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        Self::recursive_with(rels, prefixes, Parallelism::auto())
    }

    /// [`CustomerCones::recursive`] with an explicit thread budget.
    pub fn recursive_with(
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        let interner = AsnInterner::from_ases(rels.link_endpoints());
        let n = interner.len();
        if n == 0 {
            return CustomerCones::default();
        }

        // Provider→customer edges by dense id — the orientation the
        // closure DP walks.
        let mut p2c: Vec<(u32, u32)> = rels
            .c2p_pairs()
            .map(|(c, p)| {
                (
                    // The interner was built from these same endpoints,
                    // so every c2p member is interned by construction.
                    // lint: allow(panics, interner seeded from rels.link_endpoints covers every c2p endpoint)
                    interner.get(p).expect("interned"),
                    // lint: allow(panics, interner seeded from rels.link_endpoints covers every c2p endpoint)
                    interner.get(c).expect("interned"),
                )
            })
            .collect();
        // The pairs come off a hash map whose iteration order reflects
        // insertion history, not content — two equal relationship maps
        // can yield permuted edge lists, and that permutation would leak
        // into Tarjan's component numbering and the member grouping.
        // Sorting pins the whole cone layout to the map's content.
        p2c.sort_unstable();
        let customers = Csr::from_edges(n, &p2c);

        // Kahn completes exactly when the digraph is acyclic — the
        // typical case, since a c2p cycle is an inference error. Then
        // every "component" is a single AS and the Tarjan pass, the
        // condensation, and the member grouping all collapse to identity
        // mappings that never materialize.
        let order = kahn_order(n, &p2c, &customers);
        if order.len() == n {
            let member_starts: Vec<u32> = (0..=n as u32).collect();
            let member_ids: Vec<u32> = (0..n as u32).collect();
            let (members_flat, bounds, sizes) = closure_dp(
                &customers,
                &order,
                &member_starts,
                &member_ids,
                &interner,
                prefixes,
                par,
            );
            return CustomerCones {
                interner,
                set_of: (0..n as u32).collect(),
                members_flat,
                bounds,
                sizes,
            };
        }

        // Cycles exist: collapse them exactly with Tarjan SCCs (SCCs are
        // orientation-invariant, so the p2c graph serves as-is) and run
        // the DP over the acyclic condensation — every member of a c2p
        // cycle shares one cone.
        let scc = crate::scc::tarjan(n, &customers);
        let ncomp = scc.count;

        // Condensed provider→customer edges (comp → comp). Parallel
        // edges are left in: Kahn counts and decrements them
        // symmetrically, and the DP's unions are idempotent — skipping
        // a sort+dedup pass is a measurable win on big edge lists.
        let comp_edges: Vec<(u32, u32)> = p2c
            .iter()
            .filter_map(|&(p, c)| {
                let (pc, cc) = (scc.comp[p as usize], scc.comp[c as usize]);
                (pc != cc).then_some((pc, cc))
            })
            .collect();
        let comp_customers = Csr::from_edges(ncomp, &comp_edges);
        let order = kahn_order(ncomp, &comp_edges, &comp_customers);
        debug_assert_eq!(order.len(), ncomp, "condensation must be acyclic");

        // Group member ids by component with a counting sort — flat
        // arrays, no per-component `Vec` — ids ascend within each group.
        let mut member_starts = vec![0u32; ncomp + 1];
        for &cm in &scc.comp {
            member_starts[cm as usize + 1] += 1;
        }
        for i in 1..=ncomp {
            member_starts[i] += member_starts[i - 1];
        }
        let mut cursor = member_starts.clone();
        let mut member_ids = vec![0u32; n];
        for id in 0..n as u32 {
            let cm = scc.comp[id as usize] as usize;
            member_ids[cursor[cm] as usize] = id;
            cursor[cm] += 1;
        }

        let (members_flat, bounds, sizes) = closure_dp(
            &comp_customers,
            &order,
            &member_starts,
            &member_ids,
            &interner,
            prefixes,
            par,
        );
        CustomerCones {
            interner,
            set_of: scc.comp,
            members_flat,
            bounds,
            sizes,
        }
    }

    /// The straightforward `HashSet`-based recursive closure this module
    /// shipped with before the dense/bitset rewrite: per-AS BFS over
    /// provider→customer edges with hashed visited-sets.
    ///
    /// Kept as the correctness oracle for the property tests (the bitset
    /// closure must agree on every topology, cycles included) and as the
    /// baseline the `cones` benchmark measures the rewrite against. Do
    /// not use it for real workloads.
    pub fn recursive_reference(
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let interner = AsnInterner::from_ases(rels.link_endpoints());
        let n = interner.len();
        let mut customers_by_provider: HashMap<Asn, Vec<Asn>> = HashMap::new();
        for (c, p) in rels.c2p_pairs() {
            customers_by_provider.entry(p).or_default().push(c);
        }
        let mut members_flat = Vec::new();
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0u32);
        let mut sizes = Vec::with_capacity(n);
        for (_, asn) in interner.iter() {
            let mut seen: HashSet<Asn> = HashSet::new();
            let mut stack = vec![asn];
            seen.insert(asn);
            while let Some(x) = stack.pop() {
                for &c in customers_by_provider
                    .get(&x)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
            let mut members: Vec<Asn> = seen.into_iter().collect();
            members.sort_unstable();
            sizes.push(measure_hashed(&members, prefixes));
            members_flat.extend_from_slice(&members);
            bounds.push(dense_id(members_flat.len()));
        }
        CustomerCones {
            interner,
            set_of: (0..n as u32).collect(),
            members_flat,
            bounds,
            sizes,
        }
    }

    /// **BGP-observed cone**: membership requires a witnessed descent.
    pub fn bgp_observed(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        Self::bgp_observed_with(sanitized, rels, prefixes, Parallelism::auto())
    }

    /// [`CustomerCones::bgp_observed`] with an explicit thread budget.
    pub fn bgp_observed_with(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        let arena = PathArena::build_with(sanitized, par);
        Self::bgp_observed_from_arena(&arena, rels, prefixes, par)
    }

    /// [`CustomerCones::bgp_observed`] over a prebuilt [`PathArena`] —
    /// the single-sweep engine. Worker shards scan contiguous path
    /// ranges once for maximal descending runs (each run puts everything
    /// below the top AS into that AS's cone), emit packed (cone-root,
    /// member) pairs into per-shard buffers, and a sort+dedup merge
    /// builds the flat member sets — deterministic for every thread
    /// count.
    pub fn bgp_observed_from_arena(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        Self::bgp_observed_from_arena_with_block(arena, rels, prefixes, par, 0)
    }

    /// [`CustomerCones::bgp_observed_from_arena`] with an explicit
    /// owner-block width for the pair merge: `0` picks a cache-sized
    /// width automatically (the default engine path), any other value
    /// forces that many owner ids per block. Output is bit-identical
    /// for every width — the knob only moves the merge's working set.
    pub fn bgp_observed_from_arena_with_block(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
        block_ids: usize,
    ) -> Self {
        let providers = witness_graph(arena, rels, false);
        let pairs = sweep_pairs_blocked(arena, &providers, par, scan_descents, block_ids);
        observed_cones(arena, pairs, prefixes, par)
    }

    /// [`CustomerCones::bgp_observed_from_arena`] forced through the
    /// pre-PR8 single full-width counting-sort merge. Kept as the
    /// blocked merge's equivalence oracle and the baseline the `scale`
    /// benchmark measures the cache-blocked merge against.
    pub fn bgp_observed_from_arena_unblocked(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        let providers = witness_graph(arena, rels, false);
        let pairs = sweep_pairs(arena, &providers, par, scan_descents);
        observed_cones(arena, pairs, prefixes, par)
    }

    /// **Provider/peer observed cone**: membership requires `x` to have
    /// been seen announcing the member to a provider or peer.
    pub fn provider_peer_observed(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        Self::provider_peer_observed_with(sanitized, rels, prefixes, Parallelism::auto())
    }

    /// [`CustomerCones::provider_peer_observed`] with an explicit thread
    /// budget.
    pub fn provider_peer_observed_with(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        let arena = PathArena::build_with(sanitized, par);
        Self::provider_peer_observed_from_arena(&arena, rels, prefixes, par)
    }

    /// [`CustomerCones::provider_peer_observed`] over a prebuilt
    /// [`PathArena`] — the single-sweep engine (see
    /// [`CustomerCones::bgp_observed_from_arena`] for the merge
    /// strategy).
    pub fn provider_peer_observed_from_arena(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        Self::provider_peer_observed_from_arena_with_block(arena, rels, prefixes, par, 0)
    }

    /// [`CustomerCones::provider_peer_observed_from_arena`] with an
    /// explicit owner-block width for the pair merge (`0` = auto; see
    /// [`CustomerCones::bgp_observed_from_arena_with_block`]).
    pub fn provider_peer_observed_from_arena_with_block(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
        block_ids: usize,
    ) -> Self {
        let graphs = witness_graph(arena, rels, true);
        let pairs = sweep_pairs_blocked(arena, &graphs, par, scan_announcements, block_ids);
        observed_cones(arena, pairs, prefixes, par)
    }

    /// [`CustomerCones::provider_peer_observed_from_arena`] forced
    /// through the pre-PR8 full-width merge (equivalence oracle and
    /// bench baseline; see
    /// [`CustomerCones::bgp_observed_from_arena_unblocked`]).
    pub fn provider_peer_observed_from_arena_unblocked(
        arena: &PathArena,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> Self {
        let graphs = witness_graph(arena, rels, true);
        let pairs = sweep_pairs(arena, &graphs, par, scan_announcements);
        observed_cones(arena, pairs, prefixes, par)
    }

    /// The pre-arena BGP-observed computation: per-call interner build,
    /// per-path `Vec<u32>` allocation, and lexicographic `Vec<Vec<u32>>`
    /// sort+dedup — everything [`PathArena`] now amortizes.
    ///
    /// Kept as the property-test oracle (the arena sweep must agree on
    /// every topology) and the baseline the `cones` benchmark measures
    /// the arena engine against. Do not use it for real workloads.
    pub fn bgp_observed_reference(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let par = Parallelism::auto();
        let ctx = ObservedContext::build(sanitized, rels);
        // Scan distinct paths for maximal descending runs; each run puts
        // everything below the top AS into that AS's cone.
        let pairs = ctx.collect_pairs(&ctx.c2p, par, scan_descents);
        ctx.into_cones(pairs, prefixes, par)
    }

    /// The pre-arena provider/peer-observed computation; see
    /// [`CustomerCones::bgp_observed_reference`] for why it survives.
    pub fn provider_peer_observed_reference(
        sanitized: &SanitizedPaths,
        rels: &RelationshipMap,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    ) -> Self {
        let par = Parallelism::auto();
        let ctx = ObservedContext::build(sanitized, rels);
        let pairs = ctx.collect_pairs(&ctx.c2p_or_p2p, par, scan_announcements);
        ctx.into_cones(pairs, prefixes, par)
    }
}

/// Position/relationship predicate of the BGP-observed cone: every
/// maximal descending run `hops[start..=end]` (each step witnessed by a
/// c2p edge) puts `hops[start+1..=end]` into `hops[start]`'s cone —
/// for *every* start inside the run, since each suffix of a descent is
/// itself a witnessed descent.
///
/// Each adjacent pair's witness edge is tested exactly once: a start
/// inside a maximal descending block always extends to the block's end,
/// so the per-start runs never need their own edge probes.
fn scan_descents(hops: &[u32], providers: &Csr, emit: &mut dyn FnMut(u32, u32)) {
    let mut s = 0;
    while s + 1 < hops.len() {
        // Maximal descending block starting at s.
        let mut e = s;
        while e + 1 < hops.len() && has_edge(providers, hops[e + 1], hops[e]) {
            e += 1;
        }
        if e == s {
            s += 1;
            continue;
        }
        for start in s..e {
            for &below in &hops[start + 1..=e] {
                emit(hops[start], below);
            }
        }
        // The pair (e, e+1) failed the witness test (or e+1 is the path
        // end), so no descent can start before e + 1.
        s = e + 1;
    }
}

/// Position/relationship predicate of the provider/peer-observed cone:
/// when `hops[i-1]` is `hops[i]`'s provider or peer, `hops[i]` announced
/// everything beyond itself — which can only be customer routes.
fn scan_announcements(hops: &[u32], graphs: &Csr, emit: &mut dyn FnMut(u32, u32)) {
    for i in 1..hops.len() {
        let (x, w) = (hops[i], hops[i - 1]);
        // w received the route from x; if w is x's provider or peer,
        // everything beyond x is x's customer cone.
        if has_edge(graphs, x, w) {
            for &below in &hops[i + 1..] {
                emit(x, below);
            }
        }
    }
}

/// Witness edges (`x → w` where `w` is `x`'s provider, optionally also
/// peers, restricted to path-observed ASes) as a sorted CSR over the
/// arena's id space.
fn witness_graph(arena: &PathArena, rels: &RelationshipMap, include_peers: bool) -> Csr {
    let interner = arena.interner();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (c, p) in rels.c2p_pairs() {
        if let (Some(ci), Some(pi)) = (interner.get(c), interner.get(p)) {
            edges.push((ci, pi));
        }
    }
    if include_peers {
        for (a, b) in rels.p2p_pairs() {
            if let (Some(ai), Some(bi)) = (interner.get(a), interner.get(b)) {
                edges.push((ai, bi));
                edges.push((bi, ai));
            }
        }
    }
    Csr::from_edges_dedup(interner.len(), &edges)
}

/// The scan half of the sweep: worker shards scan contiguous path
/// ranges of the arena once, emitting packed `(owner << 32) | member`
/// pairs into per-shard buffers, concatenated in shard order. The
/// result is unsorted and duplicate-bearing — it feeds one of the two
/// merges below, and shard order is deterministic, so the merged output
/// is independent of both path order and thread count.
fn raw_sweep_pairs<F>(arena: &PathArena, witness: &Csr, par: Parallelism, scan: F) -> Vec<u64>
where
    F: Fn(&[u32], &Csr, &mut dyn FnMut(u32, u32)) + Sync,
{
    par::map_ranges(par, 32, arena.len(), |range| {
        let mut local: Vec<u64> = Vec::new();
        for p in range {
            scan(arena.path(p), witness, &mut |owner, member| {
                local.push((owner as u64) << 32 | member as u64);
            });
        }
        local
    })
    .concat()
}

/// The single parallel sweep with the pre-PR8 merge: one full-width
/// counting sort over the whole pair list, then dedup.
fn sweep_pairs<F>(arena: &PathArena, witness: &Csr, par: Parallelism, scan: F) -> Vec<u64>
where
    F: Fn(&[u32], &Csr, &mut dyn FnMut(u32, u32)) + Sync,
{
    let raw = raw_sweep_pairs(arena, witness, par, scan);
    merge_sweep_pairs_unblocked(&raw, arena.num_ases())
}

/// [`sweep_pairs`] with the merge replaced by the cache-blocked
/// per-owner-block counting sort of [`merge_sweep_pairs_blocked`].
/// `block_ids == 0` sizes blocks automatically from the pair count;
/// the output is bit-identical to [`sweep_pairs`] for every width.
fn sweep_pairs_blocked<F>(
    arena: &PathArena,
    witness: &Csr,
    par: Parallelism,
    scan: F,
    block_ids: usize,
) -> Vec<u64>
where
    F: Fn(&[u32], &Csr, &mut dyn FnMut(u32, u32)) + Sync,
{
    let raw = raw_sweep_pairs(arena, witness, par, scan);
    merge_sweep_pairs_blocked(&raw, arena.num_ases(), block_ids, par)
}

/// The descent scan of the BGP-observed sweep, stopped before the
/// merge: raw packed pairs exactly as [`raw_sweep_pairs`] emits them.
/// Benchmark surface — the `scale` bench feeds the same raw pairs to
/// [`merge_sweep_pairs_blocked`] and [`merge_sweep_pairs_unblocked`]
/// so the two merges are timed on identical input.
pub fn bgp_raw_sweep_pairs(arena: &PathArena, rels: &RelationshipMap, par: Parallelism) -> Vec<u64> {
    let providers = witness_graph(arena, rels, false);
    raw_sweep_pairs(arena, &providers, par, scan_descents)
}

/// Sort packed `(owner << 32) | member` pairs ascending via a two-pass
/// stable counting sort over the dense id space — O(pairs + ids) versus
/// the O(pairs·log pairs) comparison sort it replaces, and exactly as
/// deterministic (counting sort has no comparator, let alone an
/// unstable one).
fn sort_pairs(pairs: &mut Vec<u64>, n: usize) {
    // Comparison sort is fine (and allocation-free) for tiny inputs.
    if pairs.len() <= n || n == 0 {
        pairs.sort_unstable();
        return;
    }
    let mut tmp: Vec<u64> = vec![0; pairs.len()];
    let mut counts: Vec<u32> = vec![0; n + 1];
    // Pass 1: stable bucket by member (low word) into tmp.
    for &e in pairs.iter() {
        counts[(e & 0xFFFF_FFFF) as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    for &e in pairs.iter() {
        let c = &mut counts[(e & 0xFFFF_FFFF) as usize];
        tmp[*c as usize] = e;
        *c += 1;
    }
    // Pass 2: stable bucket by owner (high word) back into pairs; the
    // member order within each owner survives from pass 1.
    counts.clear();
    counts.resize(n + 1, 0);
    for &e in tmp.iter() {
        counts[(e >> 32) as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    for &e in tmp.iter() {
        let c = &mut counts[(e >> 32) as usize];
        pairs[*c as usize] = e;
        *c += 1;
    }
}

/// Presence-bitmap budget for the automatic block width: one block's
/// `width × num_ases` bitmap is sized to ~256 KiB — L2-resident on
/// current cores. Cache-sized, not core-sized: the win is that every
/// dedup write lands in a resident bitmap, so it holds on one core
/// exactly as on many.
const SWEEP_BLOCK_BITMAP_BYTES: usize = 256 * 1024;

/// The pre-PR8 merge on raw sweep pairs: one full-width two-pass
/// counting sort plus dedup. Kept callable as the blocked merge's
/// benchmark baseline and equivalence oracle.
pub fn merge_sweep_pairs_unblocked(raw: &[u64], num_ases: usize) -> Vec<u64> {
    let mut pairs = raw.to_vec();
    sort_pairs(&mut pairs, num_ases);
    pairs.dedup();
    pairs
}

/// Cache-blocked merge of raw sweep pairs: partition by owner-id block,
/// then collapse each block through a presence bitmap of
/// `block_width × num_ases` bits. Setting a bit per raw pair dedups as
/// a side effect, and walking the bitmap's owner rows emits the
/// surviving pairs already sorted — the sort pass disappears entirely.
/// Blocks own disjoint ascending owner ranges, so the per-block outputs
/// concatenate into exactly the globally sorted, deduplicated pair list
/// — bit-identical to [`merge_sweep_pairs_unblocked`] for every
/// `block_ids` (`0` = automatic cache-sized width).
///
/// Why this is faster at scale: raw sweeps repeat each (owner, member)
/// pair once per witnessing path, so the raw list is many times larger
/// than its unique survivors. The full-width sort pays two counting
/// passes over *every* repeat; the bitmap pays one resident bit-set per
/// repeat and then walks bits, never touching the repeats again. The
/// bitmap only stays resident because blocking bounds it — the
/// full-width equivalent (`num_ases²` bits) would thrash exactly like
/// the scatter it replaces.
pub fn merge_sweep_pairs_blocked(
    raw: &[u64],
    num_ases: usize,
    block_ids: usize,
    par: Parallelism,
) -> Vec<u64> {
    let total = raw.len();
    let n = num_ases;
    if total == 0 {
        return Vec::new();
    }
    // Owner-block width: forced, or sized so one block's bitmap fits
    // the cache budget. The automatic width is rounded to a power of
    // two so the hot partition passes divide by shifting; forced widths
    // (a test/config knob) keep exact ragged boundaries and real
    // division.
    let auto_shift = if block_ids == 0 {
        let w = (SWEEP_BLOCK_BITMAP_BYTES * 8 / n.max(1)).clamp(1, n.max(1));
        Some(w.next_power_of_two().trailing_zeros())
    } else {
        None
    };
    let width = match auto_shift {
        Some(shift) => 1usize << shift,
        None => block_ids.min(n.max(1)),
    };
    let nblocks = n.div_ceil(width).max(1);
    if nblocks <= 1 {
        return merge_sweep_pairs_unblocked(raw, n);
    }
    let (seg_starts, parts) = match auto_shift {
        Some(shift) => partition_by_block(raw, nblocks, move |e| ((e >> 32) >> shift) as usize),
        None => partition_by_block(raw, nblocks, move |e| (e >> 32) as usize / width),
    };
    // Collapse every block independently. Owners never cross a block
    // boundary, so per-block dedup is global dedup, and block order is
    // id order. Each worker reuses one bitmap (and the counting-sort
    // scratch for sparse blocks) across its whole range of blocks.
    let words_per_row = n.div_ceil(64);
    par::map_ranges(par, 1, nblocks, |range| {
        let mut out: Vec<u64> = Vec::new();
        let mut bits: Vec<u64> = Vec::new();
        let mut scratch: Vec<u64> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for b in range {
            let seg = &parts[seg_starts[b]..seg_starts[b + 1]];
            if seg.is_empty() {
                continue;
            }
            let base = b * width;
            let rows = width.min(n - base);
            // Sparse blocks: the O(pairs) counting sort beats zeroing
            // and walking a bitmap the pairs barely populate. Either
            // path produces the identical sorted, deduplicated tail.
            if seg.len() * 4 < rows * words_per_row {
                let before = out.len();
                sort_block_into(seg, &mut out, &mut scratch, &mut counts);
                dedup_from(&mut out, before);
                continue;
            }
            bits.clear();
            bits.resize(rows * words_per_row, 0);
            for &e in seg {
                let o = (e >> 32) as usize - base;
                let m = (e & 0xFFFF_FFFF) as usize;
                bits[o * words_per_row + m / 64] |= 1u64 << (m % 64);
            }
            for local_o in 0..rows {
                let owner_hi = ((base + local_o) as u64) << 32;
                let row = &bits[local_o * words_per_row..(local_o + 1) * words_per_row];
                for (wi, &w) in row.iter().enumerate() {
                    let mut word = w;
                    while word != 0 {
                        let m = wi as u64 * 64 + word.trailing_zeros() as u64;
                        out.push(owner_hi | m);
                        word &= word - 1;
                    }
                }
            }
        }
        out
    })
    .concat()
}

/// Partition packed pairs into per-owner-block segments: one histogram
/// pass, one scatter pass with `nblocks` streaming cursors. The cursor
/// table and the block tails it appends to stay cache-resident — unlike
/// the full-width counting-sort scatter, whose write targets span the
/// entire pair list. Generic over the block-index function so the
/// automatic power-of-two width monomorphizes to a shift while forced
/// widths keep real division.
fn partition_by_block<F>(raw: &[u64], nblocks: usize, block_of: F) -> (Vec<usize>, Vec<u64>)
where
    F: Fn(u64) -> usize,
{
    let mut seg_starts = vec![0usize; nblocks + 1];
    for &e in raw {
        seg_starts[block_of(e) + 1] += 1;
    }
    for b in 1..=nblocks {
        seg_starts[b] += seg_starts[b - 1];
    }
    let mut parts: Vec<u64> = vec![0; raw.len()];
    let mut cursor: Vec<usize> = seg_starts[..nblocks].to_vec();
    for &e in raw {
        let b = block_of(e);
        parts[cursor[b]] = e;
        cursor[b] += 1;
    }
    (seg_starts, parts)
}

/// Sort one owner block's packed pairs ascending, appending them to
/// `out`. Two stable counting passes, both sized to the block's live
/// value spans (observed member range, then the block's observed owner
/// range) rather than the full id space — `scratch` never outgrows the
/// block and `counts` never outgrows the live span.
fn sort_block_into(seg: &[u64], out: &mut Vec<u64>, scratch: &mut Vec<u64>, counts: &mut Vec<u32>) {
    let before = out.len();
    // Tiny blocks: comparison sort beats two counting passes.
    if seg.len() <= 64 {
        out.extend_from_slice(seg);
        out[before..].sort_unstable();
        return;
    }
    let mut min_m = u64::MAX;
    let mut max_m = 0u64;
    let mut min_o = u64::MAX;
    let mut max_o = 0u64;
    for &e in seg {
        let m = e & 0xFFFF_FFFF;
        let o = e >> 32;
        min_m = min_m.min(m);
        max_m = max_m.max(m);
        min_o = min_o.min(o);
        max_o = max_o.max(o);
    }
    let member_span = (max_m - min_m) as usize + 1;
    let owner_span = (max_o - min_o) as usize + 1;
    // Pass 1: stable bucket by member (low word) into scratch.
    counts.clear();
    counts.resize(member_span + 1, 0);
    for &e in seg {
        counts[((e & 0xFFFF_FFFF) - min_m) as usize + 1] += 1;
    }
    for i in 0..member_span {
        counts[i + 1] += counts[i];
    }
    scratch.clear();
    scratch.resize(seg.len(), 0);
    for &e in seg {
        let c = &mut counts[((e & 0xFFFF_FFFF) - min_m) as usize];
        scratch[*c as usize] = e;
        *c += 1;
    }
    // Pass 2: stable bucket by owner (high word), appending to `out`;
    // the member order within each owner survives from pass 1.
    counts.clear();
    counts.resize(owner_span + 1, 0);
    for &e in scratch.iter() {
        counts[((e >> 32) - min_o) as usize + 1] += 1;
    }
    for i in 0..owner_span {
        counts[i + 1] += counts[i];
    }
    out.resize(before + seg.len(), 0);
    for &e in scratch.iter() {
        let c = &mut counts[((e >> 32) - min_o) as usize];
        out[before + *c as usize] = e;
        *c += 1;
    }
}

/// In-place dedup of the sorted tail `v[from..]` (the block just
/// appended); earlier blocks are untouched and cannot share owners.
fn dedup_from(v: &mut Vec<u64>, from: usize) {
    let mut w = from;
    for r in from..v.len() {
        if w == from || v[w - 1] != v[r] {
            v[w] = v[r];
            w += 1;
        }
    }
    v.truncate(w);
}

/// Materialize observed cones from sorted `(owner, member)` pairs:
/// every observed AS gets the trivial cone of itself plus its collected
/// members (the same final stage as [`ObservedContext::into_cones`],
/// reading the interner from the shared arena).
fn observed_cones(
    arena: &PathArena,
    pairs: Vec<u64>,
    prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    par: Parallelism,
) -> CustomerCones {
    let interner = arena.interner().clone();
    let n = interner.len();
    let weights = PrefixWeights::build(&interner, prefixes);

    // Per-owner slice boundaries in the sorted pair list.
    let mut starts = vec![0usize; n + 1];
    {
        let mut cursor = 0usize;
        for owner in 0..n as u64 {
            while cursor < pairs.len() && pairs[cursor] >> 32 < owner {
                cursor += 1;
            }
            starts[owner as usize] = cursor;
        }
        starts[n] = pairs.len();
    }

    let materialized = par::map_ranges(par, 256, n, |range| {
        let mut chunk = ChunkSets::with_capacity(range.len());
        for owner in range {
            let (lo, hi) = (starts[owner], starts[owner + 1]);
            let before = chunk.members.len();
            let mut size = ConeSize::default();
            // Merge the owner itself into its sorted member run.
            let mut self_pending = true;
            for &packed in &pairs[lo..hi] {
                let member = packed as u32;
                if self_pending && member as usize >= owner {
                    if member as usize > owner {
                        chunk.push_member(owner as u32, &interner, &weights, &mut size);
                    }
                    self_pending = false;
                }
                chunk.push_member(member, &interner, &weights, &mut size);
            }
            if self_pending {
                chunk.push_member(owner as u32, &interner, &weights, &mut size);
            }
            chunk.finish_set(before, size);
        }
        chunk
    });

    let (members_flat, bounds, sizes) = ChunkSets::assemble(materialized);
    CustomerCones {
        interner,
        set_of: (0..n as u32).collect(),
        members_flat,
        bounds,
        sizes,
    }
}

/// Membership test against a sorted CSR neighbor list.
fn has_edge(g: &Csr, from: u32, to: u32) -> bool {
    g.neighbors(from).binary_search(&to).is_ok()
}

/// Shared scaffolding of the two observed-cone computations: dense ids
/// over every AS seen in the sanitized paths, distinct paths mapped to
/// dense hops, and the relationship edges needed for witness tests.
struct ObservedContext {
    interner: AsnInterner,
    /// Distinct paths as dense-id hop lists.
    paths: Vec<Vec<u32>>,
    /// `c → p` c2p edges (sorted CSR) — the BGP-observed descent test.
    c2p: Csr,
    /// `c → p` c2p plus symmetric p2p edges — the provider/peer-observed
    /// announcement-witness test.
    c2p_or_p2p: Csr,
}

impl ObservedContext {
    fn build(sanitized: &SanitizedPaths, rels: &RelationshipMap) -> Self {
        let interner =
            AsnInterner::from_ases(sanitized.paths().flat_map(|p| p.iter()));
        let n = interner.len();

        // Distinct paths in sorted id order: dedup via sort rather than a
        // HashSet so downstream traversal order is reproducible (L001).
        let mut paths: Vec<Vec<u32>> = sanitized
            .paths()
            .map(|p| {
                p.iter()
                    // The interner was seeded from these same paths above.
                    // lint: allow(panics, interner built from sanitized.paths covers every path ASN)
                    .map(|a| interner.get(a).expect("interned"))
                    .collect()
            })
            .collect();
        paths.sort_unstable();
        paths.dedup();

        // Witness edges restricted to interned (path-observed) ASes:
        // x → w where w is x's provider (c2p), optionally also peers.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (c, p) in rels.c2p_pairs() {
            if let (Some(ci), Some(pi)) = (interner.get(c), interner.get(p)) {
                edges.push((ci, pi));
            }
        }
        let c2p = Csr::from_edges_dedup(n, &edges);
        for (a, b) in rels.p2p_pairs() {
            if let (Some(ai), Some(bi)) = (interner.get(a), interner.get(b)) {
                edges.push((ai, bi));
                edges.push((bi, ai));
            }
        }
        let c2p_or_p2p = Csr::from_edges_dedup(n, &edges);

        ObservedContext {
            interner,
            paths,
            c2p,
            c2p_or_p2p,
        }
    }

    /// Run `scan` over every distinct path in parallel, collecting
    /// `(owner, member)` dense-id pairs; the packed pair list is sorted
    /// and deduplicated, so the result is independent of path order and
    /// thread count.
    fn collect_pairs<F>(&self, witness: &Csr, par: Parallelism, scan: F) -> Vec<u64>
    where
        F: Fn(&[u32], &Csr, &mut dyn FnMut(u32, u32)) + Sync,
    {
        let per_chunk = par::map_chunks(par, 32, &self.paths, |chunk| {
            let mut local: Vec<u64> = Vec::new();
            for hops in chunk {
                scan(hops, witness, &mut |owner, member| {
                    local.push((owner as u64) << 32 | member as u64);
                });
            }
            local
        });
        let mut pairs: Vec<u64> = per_chunk.concat();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Build the final cones: every observed AS gets the trivial cone of
    /// itself plus its collected members. `pairs` must be sorted.
    fn into_cones(
        self,
        pairs: Vec<u64>,
        prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
        par: Parallelism,
    ) -> CustomerCones {
        let n = self.interner.len();
        let weights = PrefixWeights::build(&self.interner, prefixes);

        // Per-owner slice boundaries in the sorted pair list.
        let mut starts = vec![0usize; n + 1];
        {
            let mut cursor = 0usize;
            for owner in 0..n as u64 {
                while cursor < pairs.len() && pairs[cursor] >> 32 < owner {
                    cursor += 1;
                }
                starts[owner as usize] = cursor;
            }
            starts[n] = pairs.len();
        }

        let materialized = par::map_ranges(par, 256, n, |range| {
            let mut chunk = ChunkSets::with_capacity(range.len());
            for owner in range {
                let (lo, hi) = (starts[owner], starts[owner + 1]);
                let before = chunk.members.len();
                let mut size = ConeSize::default();
                // Merge the owner itself into its sorted member run.
                let mut self_pending = true;
                for &packed in &pairs[lo..hi] {
                    let member = packed as u32;
                    if self_pending && member as usize >= owner {
                        if member as usize > owner {
                            chunk.push_member(owner as u32, &self.interner, &weights, &mut size);
                        }
                        self_pending = false;
                    }
                    chunk.push_member(member, &self.interner, &weights, &mut size);
                }
                if self_pending {
                    chunk.push_member(owner as u32, &self.interner, &weights, &mut size);
                }
                chunk.finish_set(before, size);
            }
            chunk
        });

        let (members_flat, bounds, sizes) = ChunkSets::assemble(materialized);
        CustomerCones {
            interner: self.interner,
            set_of: (0..n as u32).collect(),
            members_flat,
            bounds,
            sizes,
        }
    }
}

/// Materialize one bitset cone as a sorted member list plus its measured
/// size (ids ascend with ASN, so no sort is needed).
/// Kahn topological order over `0..n` along `edges` / its CSR `succ`.
/// Returns fewer than `n` nodes exactly when the digraph has a cycle.
fn kahn_order(n: usize, edges: &[(u32, u32)], succ: &Csr) -> Vec<u32> {
    let mut indegree = vec![0u32; n];
    for &(_, v) in edges {
        indegree[v as usize] += 1;
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&v| indegree[v as usize] == 0)
        .collect();
    while let Some(u) = queue.pop() {
        order.push(u);
        for &v in succ.neighbors(u) {
            indegree[v as usize] -= 1;
            if indegree[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    order
}

/// The shared closure DP + materialization behind
/// [`CustomerCones::recursive_with`], over an acyclic component graph.
///
/// `comp_customers` is the provider→customer adjacency of `ncomp`
/// components in `order` (a topological order, processed in reverse so
/// customers land before their providers); component `c`'s member ids
/// are `member_ids[member_starts[c]..member_starts[c + 1]]`, ascending.
/// In the common acyclic case both arrays are identity mappings.
///
/// Output-sensitive representation, chosen per component by how big the
/// cone can get:
///
/// * **Leaf** (no customers — the stub majority of any AS topology): no
///   storage at all; the cone is exactly the member list.
/// * **Small** (pre-dedup bound ≤ [`SMALL_CONE`]): sorted ids appended
///   to a shared arena via a reused merge buffer — total work (and zero
///   steady-state allocation) proportional to the cone, not the
///   universe.
/// * **Big** (the transit core, a few dozen comps): a full [`BitSet`],
///   where each union is a word-parallel `|=` and, because OR is
///   commutative, the result is independent of customer order.
///
/// Returns the flat arena layout (`members_flat`, `bounds`, `sizes`)
/// [`CustomerCones`] stores, materialized in parallel.
fn closure_dp(
    comp_customers: &Csr,
    order: &[u32],
    member_starts: &[u32],
    member_ids: &[u32],
    interner: &AsnInterner,
    prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    par: Parallelism,
) -> (Vec<Asn>, Vec<u32>, Vec<ConeSize>) {
    let n = interner.len();
    let ncomp = order.len();
    let members_of = |c: usize| &member_ids[member_starts[c] as usize..member_starts[c + 1] as usize];

    let mut cones: Vec<Option<Cone>> = (0..ncomp).map(|_| None).collect();
    let mut counts: Vec<u32> = vec![0; ncomp];
    let mut small_arena: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for &c in order.iter().rev() {
        let c = c as usize;
        let customers = comp_customers.neighbors(c as u32);
        if customers.is_empty() {
            counts[c] = dense_id(members_of(c).len()); // leaf
            continue;
        }
        // Pre-dedup upper bound on the cone; customers are already
        // computed (reverse topological order visits them first).
        let bound: usize = members_of(c).len()
            + customers
                .iter()
                .map(|&cc| counts[cc as usize] as usize)
                .sum::<usize>();
        if bound <= SMALL_CONE {
            scratch.clear();
            scratch.extend_from_slice(members_of(c));
            for &cc in customers {
                match cones[cc as usize].as_ref() {
                    None => scratch.extend_from_slice(members_of(cc as usize)),
                    Some(&Cone::Small(lo, hi)) => {
                        scratch.extend_from_slice(&small_arena[lo as usize..hi as usize])
                    }
                    // A big-universe customer can still have a small
                    // deduped count (heavy multihoming inflates the
                    // bound it was sized by, not its contents).
                    Some(Cone::Big(b)) => scratch.extend(b.iter_ones()),
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            counts[c] = dense_id(scratch.len());
            let lo = dense_id(small_arena.len());
            small_arena.extend_from_slice(&scratch);
            cones[c] = Some(Cone::Small(lo, dense_id(small_arena.len())));
        } else {
            let mut bits = BitSet::new(n);
            for &m in members_of(c) {
                bits.insert(m);
            }
            for &cc in customers {
                match cones[cc as usize].as_ref() {
                    None => {
                        for &m in members_of(cc as usize) {
                            bits.insert(m);
                        }
                    }
                    Some(&Cone::Small(lo, hi)) => {
                        for &m in &small_arena[lo as usize..hi as usize] {
                            bits.insert(m);
                        }
                    }
                    Some(Cone::Big(b)) => bits.union_with(b),
                }
            }
            counts[c] = dense_id(bits.count_ones());
            cones[c] = Some(Cone::Big(bits));
        }
    }

    // Materialize one member list + size per component, in parallel,
    // each worker appending into its own chunk arena. Ids ascend with
    // ASN (bulk interner), so lists are born sorted — the bitset sweep,
    // the small id vecs, and the leaf member lists.
    let weights = PrefixWeights::build(interner, prefixes);
    let materialized = par::map_ranges(par, 64, ncomp, |range| {
        let mut chunk = ChunkSets::with_capacity(range.len());
        for c in range {
            match cones[c].as_ref() {
                Some(Cone::Big(bits)) => chunk.append_bits(bits, interner, &weights),
                Some(&Cone::Small(lo, hi)) => {
                    chunk.append_ids(&small_arena[lo as usize..hi as usize], interner, &weights)
                }
                None => chunk.append_ids(members_of(c), interner, &weights),
            }
        }
        chunk
    });
    ChunkSets::assemble(materialized)
}

/// Per-worker accumulator for materialized member sets: one arena of
/// resolved members plus per-set lengths and sizes. Workers fill chunks
/// independently; [`ChunkSets::assemble`] stitches them, in chunk order,
/// into the flat layout [`CustomerCones`] stores — so the whole
/// materialization performs O(workers) allocations, not O(sets).
struct ChunkSets {
    members: Vec<Asn>,
    lens: Vec<u32>,
    sizes: Vec<ConeSize>,
}

impl ChunkSets {
    fn with_capacity(nsets: usize) -> Self {
        ChunkSets {
            members: Vec::new(),
            lens: Vec::with_capacity(nsets),
            sizes: Vec::with_capacity(nsets),
        }
    }

    /// Resolve and measure one member of the set being built.
    #[inline]
    fn push_member(&mut self, id: u32, interner: &AsnInterner, weights: &PrefixWeights, size: &mut ConeSize) {
        self.members.push(interner.resolve(id));
        size.ases += 1;
        size.prefixes += weights.count[id as usize] as usize;
        size.addresses += weights.addresses[id as usize];
    }

    /// Close the set opened at arena offset `before`.
    fn finish_set(&mut self, before: usize, size: ConeSize) {
        self.lens.push((self.members.len() - before) as u32);
        self.sizes.push(size);
    }

    /// Append one set from a bitset cone. Manual word loop: zero words
    /// (the sparse majority) cost one branch, and set bits peel off with
    /// `trailing_zeros` — tighter than a general-purpose bit iterator in
    /// this hot path.
    fn append_bits(&mut self, bits: &BitSet, interner: &AsnInterner, weights: &PrefixWeights) {
        let before = self.members.len();
        let mut size = ConeSize::default();
        for (wi, &word) in bits.words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let id = (wi * 64) as u32 + w.trailing_zeros();
                w &= w - 1;
                self.push_member(id, interner, weights, &mut size);
            }
        }
        self.finish_set(before, size);
    }

    /// Append one set held as sorted member ids (a leaf's member list or
    /// a small merged cone), skipping any full-universe sweep.
    fn append_ids(&mut self, member_ids: &[u32], interner: &AsnInterner, weights: &PrefixWeights) {
        let before = self.members.len();
        let mut size = ConeSize::default();
        for &id in member_ids {
            self.push_member(id, interner, weights, &mut size);
        }
        self.finish_set(before, size);
    }

    /// Stitch per-worker chunks, in order, into the flat arena layout.
    fn assemble(chunks: Vec<ChunkSets>) -> (Vec<Asn>, Vec<u32>, Vec<ConeSize>) {
        let total: usize = chunks.iter().map(|c| c.members.len()).sum();
        let nsets: usize = chunks.iter().map(|c| c.lens.len()).sum();
        let mut flat = Vec::with_capacity(total);
        let mut bounds = Vec::with_capacity(nsets + 1);
        bounds.push(0u32);
        let mut sizes = Vec::with_capacity(nsets);
        let mut cursor = 0u32;
        for chunk in chunks {
            for len in chunk.lens {
                cursor += len;
                bounds.push(cursor);
            }
            flat.extend_from_slice(&chunk.members);
            sizes.extend(chunk.sizes);
        }
        (flat, bounds, sizes)
    }
}

/// Weigh a member list via hash lookups — only used by the reference
/// implementation, matching its original code path.
fn measure_hashed(members: &[Asn], prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>) -> ConeSize {
    let mut size = ConeSize {
        ases: members.len(),
        prefixes: 0,
        addresses: 0,
    };
    if let Some(table) = prefixes {
        for m in members {
            if let Some(pfx) = table.get(m) {
                size.prefixes += pfx.len();
                size.addresses += pfx.iter().map(Ipv4Prefix::address_count).sum::<u64>();
            }
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    /// 1 ═ 2 clique; 10→1, 20→2, 100→10, 200→20; 100 multihomes to 20.
    fn rels() -> RelationshipMap {
        let mut r = RelationshipMap::new();
        r.insert_p2p(Asn(1), Asn(2));
        r.insert_c2p(Asn(10), Asn(1));
        r.insert_c2p(Asn(20), Asn(2));
        r.insert_c2p(Asn(100), Asn(10));
        r.insert_c2p(Asn(200), Asn(20));
        r.insert_c2p(Asn(100), Asn(20));
        r
    }

    fn paths(raw: &[&[u32]]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn recursive_cone_closure() {
        let cones = CustomerCones::recursive(&rels(), None);
        assert_eq!(cones.members(Asn(1)), &[Asn(1), Asn(10), Asn(100)]);
        assert_eq!(
            cones.members(Asn(2)),
            &[Asn(2), Asn(20), Asn(100), Asn(200)]
        );
        assert_eq!(cones.members(Asn(100)), &[Asn(100)]);
        assert_eq!(cones.size(Asn(2)).ases, 4);
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(!cones.contains(Asn(1), Asn(200)));
    }

    #[test]
    fn recursive_cone_handles_cycles() {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(1), Asn(2));
        r.insert_c2p(Asn(2), Asn(3));
        r.insert_c2p(Asn(3), Asn(1)); // cycle 1→2→3→1
        r.insert_c2p(Asn(9), Asn(1)); // 9 below the cycle
        let cones = CustomerCones::recursive(&r, None);
        // All cycle members share one cone containing the cycle + 9.
        for a in [1u32, 2, 3] {
            assert_eq!(
                cones.members(Asn(a)),
                &[Asn(1), Asn(2), Asn(3), Asn(9)],
                "cycle member {a}"
            );
        }
        assert_eq!(cones.members(Asn(9)), &[Asn(9)]);
    }

    #[test]
    fn reference_agrees_on_fixtures() {
        for r in [rels(), {
            let mut r = RelationshipMap::new();
            r.insert_c2p(Asn(1), Asn(2));
            r.insert_c2p(Asn(2), Asn(3));
            r.insert_c2p(Asn(3), Asn(1));
            r.insert_c2p(Asn(9), Asn(1));
            r
        }] {
            let fast = CustomerCones::recursive(&r, None);
            let slow = CustomerCones::recursive_reference(&r, None);
            assert_eq!(fast.len(), slow.len());
            for asn in fast.ases() {
                assert_eq!(fast.members(asn), slow.members(asn), "members of {asn}");
                assert_eq!(fast.size(asn), slow.size(asn), "size of {asn}");
            }
        }
    }

    #[test]
    fn prefix_weighting() {
        let mut prefixes: HashMap<Asn, Vec<Ipv4Prefix>> = HashMap::new();
        prefixes.insert(Asn(100), vec!["10.0.0.0/24".parse().unwrap()]);
        prefixes.insert(
            Asn(10),
            vec![
                "11.0.0.0/24".parse().unwrap(),
                "12.0.0.0/23".parse().unwrap(),
            ],
        );
        let cones = CustomerCones::recursive(&rels(), Some(&prefixes));
        let s1 = cones.size(Asn(1)); // cone {1,10,100}
        assert_eq!(s1.prefixes, 3);
        assert_eq!(s1.addresses, 256 + 256 + 512);
        let s100 = cones.size(Asn(100));
        assert_eq!(s100.prefixes, 1);
        assert_eq!(s100.addresses, 256);
    }

    #[test]
    fn bgp_observed_requires_witnessed_descent() {
        let r = rels();
        // Only one path descends 1 → 10 → 100; nobody ever observes
        // 20 → 100, so 100 is NOT in 20's BGP-observed cone even though
        // the recursive cone contains it.
        let p = paths(&[&[200, 20, 2, 1, 10, 100]]);
        let cones = CustomerCones::bgp_observed(&p, &r, None);
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(cones.contains(Asn(1), Asn(10)));
        assert!(cones.contains(Asn(10), Asn(100)));
        assert!(!cones.contains(Asn(20), Asn(100)), "descent not witnessed");
        // 2 receives the route from peer 1 — 1's announcement, not 2's
        // descent… 2→1 is p2p so the descent run stops at 2.
        assert!(!cones.contains(Asn(2), Asn(100)));
        // Recursive ⊇ BGP-observed.
        let rec = CustomerCones::recursive(&r, None);
        for asn in cones.ases() {
            let obs = cones.members(asn);
            for m in obs {
                assert!(
                    rec.contains(asn, *m),
                    "{m} in observed but not recursive cone of {asn}"
                );
            }
        }
    }

    #[test]
    fn provider_peer_observed_uses_announcements() {
        let r = rels();
        // Path seen at VP 200: 200 ← 20 ← 2 ← 1 ← 10 ← 100 i.e. hops
        // [200, 20, 2, 1, 10, 100]. Announcements witnessed:
        //  • 20 → 200? 200 is 20's *customer* (receives everything): no.
        //  • 2 → 20: 20's view of 2 is Provider ⇒ everything after 2
        //    ([1, 10, 100]) would be 2's cone — but wait, 2 announced the
        //    route *down* to 20… the rule keys on hops[i-1] being the
        //    provider/peer OF hops[i]:
        //    i=1: x=20, w=200: orientation(20,200)=Customer → skip.
        //    i=2: x=2, w=20: orientation(2,20)=Customer → skip.
        //    i=3: x=1, w=2: orientation(1,2)=Peer → cone(1) ⊇ {10,100}. ✓
        //    i=4: x=10, w=1: orientation(10,1)=Provider → cone(10) ⊇ {100}. ✓
        let p = paths(&[&[200, 20, 2, 1, 10, 100]]);
        let cones = CustomerCones::provider_peer_observed(&p, &r, None);
        assert!(cones.contains(Asn(1), Asn(10)));
        assert!(cones.contains(Asn(1), Asn(100)));
        assert!(cones.contains(Asn(10), Asn(100)));
        assert!(!cones.contains(Asn(2), Asn(1)), "peer is not in the cone");
        assert!(!cones.contains(Asn(20), Asn(2)));
        assert_eq!(cones.size(Asn(200)).ases, 1, "VP has trivial cone");
    }

    #[test]
    fn largest_reports_biggest_cone() {
        let cones = CustomerCones::recursive(&rels(), None);
        let (asn, size) = cones.largest().unwrap();
        assert_eq!(asn, Asn(2));
        assert_eq!(size.ases, 4);
    }

    #[test]
    fn bulk_size_iterator_matches_point_lookups() {
        let cones = CustomerCones::recursive(&rels(), None);
        let bulk: Vec<(Asn, ConeSize)> = cones.iter_sizes().collect();
        assert_eq!(bulk.len(), cones.len());
        for &(a, s) in &bulk {
            assert_eq!(s, cones.size(a));
        }
        // Ascending ASN order.
        assert!(bulk.windows(2).all(|w| w[0].0 < w[1].0));
        for (a, m) in cones.iter_members() {
            assert_eq!(m, cones.members(a));
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let r = rels();
        let p = paths(&[&[200, 20, 2, 1, 10, 100], &[100, 10, 1, 2, 20, 200]]);
        let seq = ConeSets::compute_with(&p, &r, None, Parallelism::sequential());
        let par = ConeSets::compute_with(&p, &r, None, Parallelism::threads(4));
        for (a, b) in [
            (&seq.recursive, &par.recursive),
            (&seq.bgp_observed, &par.bgp_observed),
            (&seq.provider_peer_observed, &par.provider_peer_observed),
        ] {
            assert_eq!(a.len(), b.len());
            for asn in a.ases() {
                assert_eq!(a.members(asn), b.members(asn));
                assert_eq!(a.size(asn), b.size(asn));
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let cones = CustomerCones::recursive(&RelationshipMap::new(), None);
        assert!(cones.is_empty());
        assert_eq!(cones.size(Asn(7)).ases, 1, "unknown AS has trivial cone");
        assert!(cones.members(Asn(7)).is_empty());
    }
}
