//! Compressed sparse row (CSR) adjacency over dense AS ids.
//!
//! The inference pipeline repeatedly walks neighbor lists of graphs whose
//! node set is fixed once built (the c2p digraph, its condensation). A
//! CSR layout — one offsets array, one flat targets array — keeps every
//! neighbor list contiguous, halves the memory of `Vec<Vec<u32>>`, and
//! removes a pointer chase per node. Construction is two counting passes,
//! `O(nodes + edges)`, with no per-node allocation.

/// An immutable digraph in compressed sparse row form.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from an edge list over `0..n`. Parallel edges are kept as
    /// given (dedup the input first when that matters); neighbor lists
    /// preserve the relative input order of their edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0u32; n + 1];
        for &(u, _) in edges {
            counts[u as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let slot = cursor[u as usize];
            targets[slot as usize] = v;
            cursor[u as usize] = slot + 1;
        }
        Csr { offsets, targets }
    }

    /// Build with every neighbor list sorted ascending and deduplicated.
    pub fn from_edges_dedup(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::from_edges(n, edges);
        let mut write = 0u32;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        for u in 0..n {
            let (start, end) = (g.offsets[u] as usize, g.offsets[u + 1] as usize);
            let list = &mut g.targets[start..end];
            list.sort_unstable();
            let mut prev = None;
            let from = start;
            let mut kept = 0usize;
            for i in from..end {
                let v = g.targets[i];
                if prev != Some(v) {
                    g.targets[write as usize + kept] = v;
                    kept += 1;
                    prev = Some(v);
                }
            }
            write += kept as u32;
            new_offsets.push(write);
        }
        g.targets.truncate(write as usize);
        g.offsets = new_offsets;
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `u` as a contiguous slice.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let start = self.offsets[u as usize] as usize;
        let end = self.offsets[u as usize + 1] as usize;
        &self.targets[start..end]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }
}

/// Read-only adjacency access, so graph algorithms accept either a CSR or
/// the ad-hoc `Vec<Vec<u32>>` adjacency tests build by hand.
pub trait Adjacency {
    /// Out-neighbors of `u`.
    fn neighbors(&self, u: u32) -> &[u32];
}

impl Adjacency for Csr {
    fn neighbors(&self, u: u32) -> &[u32] {
        Csr::neighbors(self, u)
    }
}

impl Adjacency for [Vec<u32>] {
    fn neighbors(&self, u: u32) -> &[u32] {
        &self[u as usize]
    }
}

impl Adjacency for Vec<Vec<u32>> {
    fn neighbors(&self, u: u32) -> &[u32] {
        &self[u as usize]
    }
}

impl<A: Adjacency + ?Sized> Adjacency for &A {
    fn neighbors(&self, u: u32) -> &[u32] {
        (**self).neighbors(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_preserves_edge_order() {
        let g = Csr::from_edges(4, &[(0, 2), (0, 1), (2, 3), (0, 2)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[2, 1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn dedup_sorts_and_removes_duplicates() {
        let g = Csr::from_edges_dedup(4, &[(0, 2), (0, 1), (2, 3), (0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.len(), 0);
        assert!(g.is_empty());
        let g = Csr::from_edges_dedup(3, &[]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
    }

    #[test]
    fn adjacency_trait_covers_vec_of_vec() {
        fn degree_sum<A: Adjacency>(n: usize, a: A) -> usize {
            (0..n as u32).map(|u| a.neighbors(u).len()).sum()
        }
        let vv = vec![vec![1u32, 2], vec![], vec![0]];
        assert_eq!(degree_sum(3, &vv), 3);
        let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
        assert_eq!(degree_sum(3, &csr), 3);
    }
}
