//! Step S1 — AS-path sanitization.
//!
//! Real BGP data (and our simulator's artifact-injected output) contains
//! paths that carry no relationship information or would actively mislead
//! the inference: loops (poisoning or corruption), reserved/private ASNs,
//! prepending, and IXP route-server ASNs that appear as an extra hop
//! between the true peers. Sanitization normalizes every usable path and
//! discards the rest, keeping counts of everything it did.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Sanitizer configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// ASNs of IXP route servers to strip from paths. The paper removes
    /// known IXP ASNs so that the two route-server clients appear
    /// adjacent, as their business relationship actually is.
    pub ixp_asns: HashSet<Asn>,
}

impl SanitizeConfig {
    /// Sanitize with a known IXP route-server list.
    pub fn with_ixps<I: IntoIterator<Item = Asn>>(ixps: I) -> Self {
        SanitizeConfig {
            ixp_asns: ixps.into_iter().collect(),
        }
    }
}

/// Counters describing what sanitization did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Paths received.
    pub input_paths: usize,
    /// Paths surviving sanitization.
    pub output_paths: usize,
    /// Paths discarded for containing a loop.
    pub discarded_loops: usize,
    /// Paths discarded for containing a reserved/private/documentation ASN.
    pub discarded_reserved: usize,
    /// Paths discarded for being empty or single-hop after cleaning.
    pub discarded_short: usize,
    /// Paths that had prepending compressed.
    pub compressed_prepending: usize,
    /// Paths that had at least one IXP ASN stripped.
    pub stripped_ixp: usize,
}

/// Sanitized dataset: cleaned samples plus the report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizedPaths {
    /// Cleaned observations (loop-free, prepending-free, routable ASNs,
    /// IXP hops removed; ≥ 2 hops each).
    pub samples: Vec<PathSample>,
    /// What happened during cleaning.
    pub report: SanitizeReport,
}

impl SanitizedPaths {
    /// Iterate over the cleaned AS paths.
    pub fn paths(&self) -> impl Iterator<Item = &AsPath> {
        self.samples.iter().map(|s| &s.path)
    }

    /// Build the interned [`crate::patharena::PathArena`] over these
    /// paths: the one-shot dedup + flatten + inverted index every
    /// path-consuming stage shares.
    pub fn arena(&self) -> crate::patharena::PathArena {
        crate::patharena::PathArena::build(self)
    }

    /// [`SanitizedPaths::arena`] with an explicit thread budget.
    pub fn arena_with(&self, par: Parallelism) -> crate::patharena::PathArena {
        crate::patharena::PathArena::build_with(self, par)
    }

    /// Distinct links observed across all cleaned paths.
    pub fn links(&self) -> HashSet<AsLink> {
        let mut out = HashSet::new();
        for p in self.paths() {
            for (a, b) in p.links() {
                out.insert(AsLink::new(a, b));
            }
        }
        out
    }
}

/// Sanitize one path. Returns `None` (with the reason recorded in
/// `report`) when the path must be discarded.
fn sanitize_path(
    path: &AsPath,
    cfg: &SanitizeConfig,
    report: &mut SanitizeReport,
) -> Option<AsPath> {
    // Reserved ASNs anywhere make the whole path suspect: poisoners use
    // private ASNs precisely because they never appear legitimately.
    if !path.all_routable() {
        report.discarded_reserved += 1;
        return None;
    }

    let compressed = path.compress_prepending();
    if compressed.len() != path.len() {
        report.compressed_prepending += 1;
    }

    // Strip IXP route-server hops *after* compression so the two clients
    // become adjacent.
    let mut hops: Vec<Asn> = compressed.0;
    if !cfg.ixp_asns.is_empty() {
        let before = hops.len();
        hops.retain(|a| !cfg.ixp_asns.contains(a));
        if hops.len() != before {
            report.stripped_ixp += 1;
        }
    }

    // Stripping can create new adjacency duplicates (A RS A never occurs
    // in practice, but be safe) — recompress.
    let cleaned = AsPath(hops).compress_prepending();

    if cleaned.has_loop() {
        report.discarded_loops += 1;
        return None;
    }
    if cleaned.len() < 2 {
        report.discarded_short += 1;
        return None;
    }
    Some(cleaned)
}

/// The sanitization outcome of a single sample: the cleaned path (or
/// `None` when discarded) plus the report-counter deltas the sample
/// contributed. The incremental engine caches one fate per sample so a
/// delta run re-sanitizes only the samples a batch touched; summing the
/// deltas reproduces [`sanitize`]'s report exactly (minus the
/// `input_paths`/`output_paths` totals, which are structural).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SampleFate {
    /// Cleaned path, `None` when the sample was discarded.
    pub clean: Option<AsPath>,
    /// This sample's contribution to the discard/rewrite counters.
    pub delta: SanitizeReport,
}

/// Sanitize one sample in isolation — the same decision procedure
/// [`sanitize_with`] applies per chunk, exposed per sample for the
/// incremental path.
pub(crate) fn sample_fate(path: &AsPath, cfg: &SanitizeConfig) -> SampleFate {
    let mut delta = SanitizeReport::default();
    let clean = sanitize_path(path, cfg, &mut delta);
    SampleFate { clean, delta }
}

/// Sanitize a whole path set (S1 of the pipeline).
pub fn sanitize(paths: &PathSet, cfg: &SanitizeConfig) -> SanitizedPaths {
    sanitize_with(paths, cfg, Parallelism::auto())
}

/// [`sanitize`] with an explicit thread budget. Paths are independent, so
/// chunks are cleaned on worker threads and reassembled in input order;
/// report counters are sums of per-chunk counters. The output is
/// identical for every `par` value.
pub fn sanitize_with(paths: &PathSet, cfg: &SanitizeConfig, par: Parallelism) -> SanitizedPaths {
    let all: Vec<&PathSample> = paths.iter().collect();
    let per_chunk = crate::par::map_chunks(par, 256, &all, |chunk| {
        let mut report = SanitizeReport::default();
        let mut samples = Vec::with_capacity(chunk.len());
        for s in chunk {
            if let Some(clean) = sanitize_path(&s.path, cfg, &mut report) {
                samples.push(PathSample {
                    vp: s.vp,
                    prefix: s.prefix,
                    path: clean,
                });
            }
        }
        (samples, report)
    });

    let mut report = SanitizeReport {
        input_paths: paths.len(),
        ..Default::default()
    };
    let mut samples = Vec::with_capacity(paths.len());
    for (chunk_samples, r) in per_chunk {
        samples.extend(chunk_samples);
        report.discarded_loops += r.discarded_loops;
        report.discarded_reserved += r.discarded_reserved;
        report.discarded_short += r.discarded_short;
        report.compressed_prepending += r.compressed_prepending;
        report.stripped_ixp += r.stripped_ixp;
    }
    report.output_paths = samples.len();
    SanitizedPaths { samples, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(paths: &[&[u32]]) -> PathSet {
        paths
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn clean_paths_pass_through() {
        let out = sanitize(
            &ps(&[&[1, 2, 3], &[4, 5, 6, 7]]),
            &SanitizeConfig::default(),
        );
        assert_eq!(out.samples.len(), 2);
        assert_eq!(out.report.output_paths, 2);
        assert_eq!(out.report.discarded_loops, 0);
    }

    #[test]
    fn loops_discarded() {
        let out = sanitize(&ps(&[&[1, 2, 1], &[1, 2, 3]]), &SanitizeConfig::default());
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.report.discarded_loops, 1);
    }

    #[test]
    fn reserved_asns_discarded() {
        let out = sanitize(
            &ps(&[&[1, 64512, 3], &[1, 0, 3], &[1, 23456, 3]]),
            &SanitizeConfig::default(),
        );
        assert!(out.samples.is_empty());
        assert_eq!(out.report.discarded_reserved, 3);
    }

    #[test]
    fn prepending_compressed_and_counted() {
        let out = sanitize(&ps(&[&[1, 2, 2, 2, 3]]), &SanitizeConfig::default());
        assert_eq!(out.samples[0].path, AsPath::from_u32s([1, 2, 3]));
        assert_eq!(out.report.compressed_prepending, 1);
    }

    #[test]
    fn ixp_asns_stripped() {
        let cfg = SanitizeConfig::with_ixps([Asn(900)]);
        let out = sanitize(&ps(&[&[1, 900, 2, 3]]), &cfg);
        assert_eq!(out.samples[0].path, AsPath::from_u32s([1, 2, 3]));
        assert_eq!(out.report.stripped_ixp, 1);
    }

    #[test]
    fn ixp_stripping_can_rescue_loopish_paths() {
        // 1 900 1 2: after stripping 900, "1 1 2" compresses to "1 2".
        let cfg = SanitizeConfig::with_ixps([Asn(900)]);
        let out = sanitize(&ps(&[&[1, 900, 1, 2]]), &cfg);
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.samples[0].path, AsPath::from_u32s([1, 2]));
    }

    #[test]
    fn short_paths_discarded() {
        let cfg = SanitizeConfig::with_ixps([Asn(900)]);
        let out = sanitize(&ps(&[&[1, 900], &[5, 5, 5]]), &cfg);
        assert!(out.samples.is_empty());
        assert_eq!(out.report.discarded_short, 2);
    }

    #[test]
    fn thread_counts_do_not_change_sanitization() {
        let raw: Vec<Vec<u32>> = (0..500)
            .map(|i| match i % 4 {
                0 => vec![i, i + 1, i + 2],
                1 => vec![i, i + 1, i],         // loop
                2 => vec![i, 64512, i + 2],     // reserved
                _ => vec![i, i + 1, i + 1, i + 2], // prepending
            })
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        let set = ps(&refs);
        let cfg = SanitizeConfig::default();
        let seq = sanitize_with(&set, &cfg, Parallelism::sequential());
        let par = sanitize_with(&set, &cfg, Parallelism::threads(4));
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.samples.len(), par.samples.len());
        for (a, b) in seq.samples.iter().zip(&par.samples) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.vp, b.vp);
            assert_eq!(a.prefix, b.prefix);
        }
    }

    #[test]
    fn links_collects_unique_adjacencies() {
        let out = sanitize(&ps(&[&[1, 2, 3], &[3, 2, 1]]), &SanitizeConfig::default());
        let links = out.links();
        assert_eq!(links.len(), 2);
        assert!(links.contains(&AsLink::new(Asn(1), Asn(2))));
        assert!(links.contains(&AsLink::new(Asn(2), Asn(3))));
    }
}
