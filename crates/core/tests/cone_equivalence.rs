//! Property tests pinning the fast cone engines to their references:
//!
//! * the dense bitset recursive-cone closure must agree with the
//!   straightforward HashSet implementation on random small topologies —
//!   including ones with c2p cycles, which the bitset path collapses
//!   through an SCC condensation while the reference walks them directly
//!   with a visited-set BFS;
//! * the arena-backed single-sweep BGP-observed and provider/peer
//!   observed cones must agree exactly with the retained pre-arena
//!   references on random path sets + relationship maps, at both
//!   `Parallelism::sequential()` and `Parallelism::threads(4)`.

use asrank_core::{sanitize, CustomerCones, SanitizeConfig, SanitizedPaths};
use asrank_types::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// Random c2p edge list over a small ASN universe. Drawing endpoints
/// independently produces diamonds, multihoming, self-referential SCCs,
/// and disconnected fragments with high probability.
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((1u32..40, 1u32..40), 0..80)
}

/// Optional prefix table assigning a deterministic number of /24s to a
/// subset of the ASes, so measured sizes are exercised too.
fn prefixes_for(edges: &[(u32, u32)]) -> HashMap<Asn, Vec<Ipv4Prefix>> {
    let mut table: HashMap<Asn, Vec<Ipv4Prefix>> = HashMap::new();
    for &(c, p) in edges {
        for a in [c, p] {
            if a % 3 == 0 {
                table.entry(Asn(a)).or_insert_with(|| {
                    (0..a % 5)
                        .map(|i| Ipv4Prefix::new((a << 16) | (i << 8), 24).unwrap())
                        .collect()
                });
            }
        }
    }
    table
}

fn rels_from(edges: &[(u32, u32)]) -> RelationshipMap {
    let mut rels = RelationshipMap::new();
    for &(c, p) in edges {
        if c != p {
            rels.insert_c2p(Asn(c), Asn(p));
        }
    }
    rels
}

/// Random raw path sets over the same small ASN universe. Sanitization
/// discards loops and compresses prepending, so the surviving set is a
/// realistic mix of short, duplicated, and overlapping paths.
fn paths_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(1u32..40, 2..6), 1..40)
}

/// Random mixed relationship edges: `(x, y, peer?)` — p2p when the flag
/// is set, c2p (x customer of y) otherwise. Last writer wins, exactly as
/// in the pipeline.
fn mixed_edges_strategy() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    proptest::collection::vec((1u32..40, 1u32..40, any::<bool>()), 0..80)
}

fn sanitized_from(paths: &[Vec<u32>]) -> SanitizedPaths {
    let ps: PathSet = paths
        .iter()
        .enumerate()
        .map(|(i, p)| PathSample {
            vp: Asn(p[0]),
            prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
            path: AsPath::from_u32s(p.iter().copied()),
        })
        .collect();
    sanitize(&ps, &SanitizeConfig::default())
}

fn mixed_rels(edges: &[(u32, u32, bool)]) -> RelationshipMap {
    let mut rels = RelationshipMap::new();
    for &(x, y, peer) in edges {
        if x == y {
            continue;
        }
        if peer {
            rels.insert_p2p(Asn(x), Asn(y));
        } else {
            rels.insert_c2p(Asn(x), Asn(y));
        }
    }
    rels
}

proptest! {
    #[test]
    fn bitset_closure_matches_reference(edges in edges_strategy()) {
        let rels = rels_from(&edges);
        let prefixes = prefixes_for(&edges);
        let fast = CustomerCones::recursive(&rels, Some(&prefixes));
        let slow = CustomerCones::recursive_reference(&rels, Some(&prefixes));

        prop_assert_eq!(fast.len(), slow.len());
        for asn in slow.ases() {
            prop_assert_eq!(
                fast.members(asn),
                slow.members(asn),
                "members of {} differ",
                asn
            );
            prop_assert_eq!(fast.size(asn), slow.size(asn), "size of {} differs", asn);
        }
        prop_assert_eq!(fast.largest(), slow.largest());
    }

    #[test]
    // chain ≥ 3: a 2-ring is unrepresentable (both directed edges share
    // one undirected AsLink, so the second insert overwrites the first).
    fn forced_cycles_still_match(chain in 3u32..12, extra in edges_strategy()) {
        // Sprinkle random edges, then deterministically close a ring
        // 1→2→…→chain→1 *afterwards* — `insert_c2p` is last-writer-wins,
        // so inserting the ring last guarantees it survives and every
        // case contains at least one non-trivial SCC.
        let mut edges: Vec<(u32, u32)> = extra;
        edges.extend((1..=chain).map(|i| (i, if i == chain { 1 } else { i + 1 })));
        let rels = rels_from(&edges);
        let fast = CustomerCones::recursive(&rels, None);
        let slow = CustomerCones::recursive_reference(&rels, None);
        for asn in slow.ases() {
            prop_assert_eq!(fast.members(asn), slow.members(asn));
        }
        // Every ring member shares the identical cone.
        let first = fast.members(Asn(1)).to_vec();
        for i in 2..=chain {
            prop_assert_eq!(fast.members(Asn(i)), first.as_slice());
        }
    }

    #[test]
    fn arena_bgp_observed_matches_reference(
        paths in paths_strategy(),
        edges in mixed_edges_strategy(),
    ) {
        let sanitized = sanitized_from(&paths);
        let rels = mixed_rels(&edges);
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(x, y, _)| (x, y)).collect();
        let prefixes = prefixes_for(&pairs);
        let slow = CustomerCones::bgp_observed_reference(&sanitized, &rels, Some(&prefixes));
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let fast = CustomerCones::bgp_observed_with(&sanitized, &rels, Some(&prefixes), par);
            prop_assert_eq!(fast.len(), slow.len(), "cone count differs at {:?}", par);
            for asn in slow.ases() {
                prop_assert_eq!(fast.members(asn), slow.members(asn), "members of {} differ at {:?}", asn, par);
                prop_assert_eq!(fast.size(asn), slow.size(asn), "size of {} differs at {:?}", asn, par);
            }
        }
    }

    #[test]
    fn arena_provider_peer_observed_matches_reference(
        paths in paths_strategy(),
        edges in mixed_edges_strategy(),
    ) {
        let sanitized = sanitized_from(&paths);
        let rels = mixed_rels(&edges);
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(x, y, _)| (x, y)).collect();
        let prefixes = prefixes_for(&pairs);
        let slow = CustomerCones::provider_peer_observed_reference(&sanitized, &rels, Some(&prefixes));
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let fast = CustomerCones::provider_peer_observed_with(&sanitized, &rels, Some(&prefixes), par);
            prop_assert_eq!(fast.len(), slow.len(), "cone count differs at {:?}", par);
            for asn in slow.ases() {
                prop_assert_eq!(fast.members(asn), slow.members(asn), "members of {} differ at {:?}", asn, par);
                prop_assert_eq!(fast.size(asn), slow.size(asn), "size of {} differs at {:?}", asn, par);
            }
        }
    }
}
