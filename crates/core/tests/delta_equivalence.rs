//! Equivalence pins for the incremental engine:
//!
//! * after any sequence of update batches, a [`DeltaSession`] refresh
//!   must hold artifacts **byte-identical** (serialized frame compare,
//!   every stage) to a cold run over the same final sample set — at
//!   `Parallelism::sequential()` and `Parallelism::threads(4)`, whether
//!   it refreshes after every batch or coalesces them;
//! * an empty update batch is a byte-identical no-op: zero recomputes,
//!   every stage a delta skip, every held `Arc` reused, every encoded
//!   frame unchanged — pinned via the engine's cache counters.
//!
//! The rebuild-from-scratch semantics of [`UpdateBatch::apply`] is the
//! oracle throughout.

use asrank_core::delta::DeltaSession;
use asrank_core::engine::Snapshot;
use asrank_core::persist::encode_artifact;
use asrank_core::pipeline::InferenceConfig;
use asrank_types::{PathDelta, UpdateBatch};
use asrank_types::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Random raw path sets over a small ASN universe — same shape as the
/// engine equivalence suite, so sanitization sees loops, prepending,
/// and overlapping paths. `(vp, prefix)` keys are unique by
/// construction (the prefix encodes the sample index).
fn paths_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(1u32..40, 2..6), 1..30)
}

/// Raw op streams: `(kind, index, hops)` tuples that [`build_batch`]
/// resolves against the evolving sample set — withdraws and replacing
/// announcements target live keys, fresh announcements mint new ones.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(u8, usize, Vec<u32>)>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u8..6,
                any::<usize>(),
                proptest::collection::vec(1u32..40, 2..6),
            ),
            0..8,
        ),
        1..4,
    )
}

fn path_set(paths: &[Vec<u32>]) -> PathSet {
    paths
        .iter()
        .enumerate()
        .map(|(i, p)| PathSample {
            vp: Asn(p[0]),
            prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
            path: AsPath::from_u32s(p.iter().copied()),
        })
        .collect()
}

/// Resolve one raw op stream into an [`UpdateBatch`] against the
/// current sample set. `fresh` mints never-before-seen prefixes in a
/// range disjoint from the base set's.
fn build_batch(
    ops: &[(u8, usize, Vec<u32>)],
    current: &PathSet,
    fresh: &mut u32,
) -> UpdateBatch {
    let keys: Vec<(Asn, Ipv4Prefix)> = current.iter().map(|s| (s.vp, s.prefix)).collect();
    let mut deltas = Vec::new();
    for (kind, idx, hops) in ops {
        let path = AsPath::from_u32s(hops.iter().copied());
        match kind % 3 {
            0 if !keys.is_empty() => {
                let (vp, prefix) = keys[idx % keys.len()];
                deltas.push((vp, prefix, PathDelta::Withdraw));
            }
            1 if !keys.is_empty() => {
                let (vp, prefix) = keys[idx % keys.len()];
                deltas.push((vp, prefix, PathDelta::Announce(path)));
            }
            _ => {
                *fresh += 1;
                let prefix = Ipv4Prefix::new(0xC000_0000 | (*fresh << 8), 24).unwrap();
                deltas.push((Asn(hops[0]), prefix, PathDelta::Announce(path)));
            }
        }
    }
    UpdateBatch::from_deltas(deltas)
}

/// Every artifact the session holds must serialize to the same bytes a
/// cold snapshot over `oracle` produces for that stage.
fn assert_matches_cold(session: &DeltaSession, oracle: &PathSet, cfg: &InferenceConfig) {
    let mut cold = Snapshot::new(oracle, cfg.clone());
    for (idx, name) in Snapshot::stage_names().iter().enumerate() {
        let want = encode_artifact(&cold.materialize(name).expect("cold stage"));
        let got = encode_artifact(&session.artifacts()[idx]);
        assert_eq!(
            got, want,
            "stage {name} frame differs from the cold run after delta refresh"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn refresh_per_batch_matches_cold_run(
        paths in paths_strategy(),
        raw in batches_strategy(),
    ) {
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let mut cfg = InferenceConfig::default();
            cfg.parallelism = par;
            let mut oracle = path_set(&paths);
            let mut session =
                DeltaSession::new(oracle.clone(), cfg.clone()).expect("session");
            let mut fresh = 0u32;
            for ops in &raw {
                let batch = build_batch(ops, &oracle, &mut fresh);
                session.apply(&batch).expect("apply");
                oracle = batch.apply(oracle);
                session.refresh().expect("refresh");
                prop_assert_eq!(session.len(), oracle.len());
                assert_matches_cold(&session, &oracle, &cfg);
            }
        }
    }

    #[test]
    fn coalesced_batches_match_cold_run(
        paths in paths_strategy(),
        raw in batches_strategy(),
    ) {
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let mut cfg = InferenceConfig::default();
            cfg.parallelism = par;
            let mut oracle = path_set(&paths);
            let mut session =
                DeltaSession::new(oracle.clone(), cfg.clone()).expect("session");
            let mut fresh = 0u32;
            for ops in &raw {
                let batch = build_batch(ops, &oracle, &mut fresh);
                session.apply(&batch).expect("apply");
                oracle = batch.apply(oracle);
            }
            session.refresh().expect("refresh");
            assert_matches_cold(&session, &oracle, &cfg);
        }
    }

    #[test]
    fn empty_batch_is_byte_identical_noop(paths in paths_strategy()) {
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let mut cfg = InferenceConfig::default();
            cfg.parallelism = par;
            let ps = path_set(&paths);
            let mut session = DeltaSession::new(ps, cfg).expect("session");
            let frames_before: Vec<Vec<u8>> =
                session.artifacts().iter().map(encode_artifact).collect();
            let inference_before = session.inference().expect("inference");
            let arena_before = session.arena().expect("arena");

            session.apply(&UpdateBatch::default()).expect("apply");
            prop_assert!(!session.pending(), "empty batch must not dirty the session");
            let outcome = session.refresh().expect("refresh");

            // Zero recomputes, every stage a skip — via the engine's
            // own delta counters.
            prop_assert_eq!(outcome.recomputed, 0);
            prop_assert_eq!(outcome.skipped, Snapshot::stage_names().len());
            for (name, stats) in &session.stage_report().stages {
                prop_assert_eq!(stats.runs, 0, "stage {} ran on an empty batch", name);
                prop_assert_eq!(stats.delta_skipped, 1, "stage {} not skipped", name);
                prop_assert_eq!(stats.delta_recomputed, 0, "stage {} recomputed", name);
            }

            // Held artifacts are the same allocations, and every
            // serialized frame is byte-identical.
            prop_assert!(Arc::ptr_eq(
                &inference_before,
                &session.inference().expect("inference")
            ));
            prop_assert!(Arc::ptr_eq(&arena_before, &session.arena().expect("arena")));
            for (idx, before) in frames_before.iter().enumerate() {
                let after = encode_artifact(&session.artifacts()[idx]);
                prop_assert_eq!(
                    before, &after,
                    "stage {} frame changed across an empty-batch refresh",
                    Snapshot::stage_names()[idx]
                );
            }
        }
    }
}

/// The dirty-fraction cutover (`InferenceConfig::delta_cold_cutover`):
/// churn above the threshold routes `refresh` through a from-scratch
/// recompute with no delta bookkeeping, churn below stays on the
/// incremental walk — and both paths emit byte-identical frames.
#[test]
fn cold_cutover_routes_by_dirty_fraction() {
    let paths: Vec<Vec<u32>> = (0..20u32)
        .map(|i| vec![1 + (i % 7), 8 + (i % 5), 13 + (i % 3)])
        .collect();
    let base = path_set(&paths);
    // Re-announce the first `n` keys with a path not in the base set.
    let churn = |n: usize| -> UpdateBatch {
        let deltas: Vec<_> = base
            .iter()
            .take(n)
            .map(|s| {
                let hops = [s.vp.0, 35, 36];
                (s.vp, s.prefix, PathDelta::Announce(AsPath::from_u32s(hops)))
            })
            .collect();
        UpdateBatch::from_deltas(deltas)
    };
    // The default leaves the fallback off (the measured crossover at
    // the 8k tier is above any realistic churn — see benches/delta.rs);
    // this test pins the routing itself with an explicit threshold.
    let mut cfg = InferenceConfig::default();
    assert_eq!(cfg.delta_cold_cutover, 1.0);
    cfg.delta_cold_cutover = 0.10;

    // 1/20 = 5% churn: below the cutover, the incremental walk runs and
    // accounts every stage as a delta skip or recompute.
    {
        let mut session = DeltaSession::new(base.clone(), cfg.clone()).expect("session");
        let batch = churn(1);
        session.apply(&batch).expect("apply");
        let oracle = batch.apply(base.clone());
        session.refresh().expect("refresh");
        for (name, stats) in &session.stage_report().stages {
            assert_eq!(
                stats.delta_skipped + stats.delta_recomputed,
                1,
                "stage {name} not walked incrementally at 5% churn"
            );
        }
        assert_matches_cold(&session, &oracle, &cfg);
    }

    // 5/20 = 25% churn: above the cutover, refresh recomputes from
    // scratch — every stage simply runs, no delta accounting at all.
    {
        let mut session = DeltaSession::new(base.clone(), cfg.clone()).expect("session");
        let batch = churn(5);
        session.apply(&batch).expect("apply");
        let oracle = batch.apply(base.clone());
        let outcome = session.refresh().expect("refresh");
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.recomputed, Snapshot::stage_names().len());
        for (name, stats) in &session.stage_report().stages {
            assert_eq!(stats.runs, 1, "stage {name} did not run cold");
            assert_eq!(
                stats.delta_skipped + stats.delta_recomputed,
                0,
                "stage {name} delta-walked despite the cold cutover"
            );
        }
        assert_matches_cold(&session, &oracle, &cfg);

        // The cutover resets the dirty accounting: a follow-up refresh
        // with no new churn is a pure skip.
        let outcome = session.refresh().expect("refresh");
        assert_eq!(outcome.recomputed, 0);
    }
}
