//! The semantic auditor graded against real pipeline output: a clean
//! inference must pass with zero errors, and deliberately corrupted
//! relationship sets must fail loudly on the matching check.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::audit::{audit, AuditConfig, Severity};
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::sanitize::{sanitize, SanitizeConfig};
use asrank_types::prelude::*;
use bgp_sim::{simulate, SimConfig, VpSelection};

struct Scenario {
    rels: RelationshipMap,
    clique: Vec<Asn>,
    sanitized: asrank_core::sanitize::SanitizedPaths,
}

fn run_pipeline(cfg: &TopologyConfig, seed: u64, vps: usize) -> Scenario {
    let topo = generate(cfg, seed);
    let mut sim = SimConfig::defaults(seed);
    sim.vp_selection = VpSelection::Count(vps);
    sim.full_feed_fraction = 0.5;
    let out = simulate(&topo, &sim);

    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let sanitize_cfg = SanitizeConfig::with_ixps(ixps.iter().copied());
    let inf = infer(&out.paths, &InferenceConfig::with_ixps(ixps));
    Scenario {
        rels: inf.relationships,
        clique: inf.clique,
        sanitized: sanitize(&out.paths, &sanitize_cfg),
    }
}

fn has_error(report: &asrank_core::audit::AuditReport, check: &str) -> bool {
    report
        .findings
        .iter()
        .any(|f| f.check == check && f.severity == Severity::Error)
}

#[test]
fn clean_small_scale_inference_passes() {
    let s = run_pipeline(&TopologyConfig::small(), 42, 30);
    let report = audit(
        &s.rels,
        Some(&s.sanitized),
        Some(&s.clique),
        &AuditConfig::default(),
    );
    assert!(report.passed(), "{}", report.render());
    // Every check actually ran (none skipped).
    for check in [
        "csr-well-formed",
        "clique-p2p",
        "p2c-cycles",
        "cone-containment",
        "cone-agreement",
        "path-arena",
        "valley-unknown-links",
    ] {
        assert!(
            report.findings.iter().any(|f| f.check == check
                && !f.detail.contains("skipped")),
            "check {check} did not run: {}",
            report.render()
        );
    }
}

#[test]
fn corrupted_relationships_fail_loudly() {
    let s = run_pipeline(&TopologyConfig::small(), 42, 30);

    // Corruption 1: demote every c2p to p2p. The observed up-peer-down
    // paths become multi-peering valleys.
    let mut flat = RelationshipMap::new();
    for (a, b) in s.rels.p2p_pairs() {
        flat.insert_p2p(a, b);
    }
    for (c, p) in s.rels.c2p_pairs() {
        flat.insert_p2p(c, p);
    }
    let report = audit(
        &flat,
        Some(&s.sanitized),
        Some(&s.clique),
        &AuditConfig::default(),
    );
    assert!(!report.passed(), "{}", report.render());
    assert!(has_error(&report, "valley-free"), "{}", report.render());

    // Corruption 2: drop one clique peering. The clique check must name it.
    let mut declique = s.rels.clone();
    let _ = declique.remove(s.clique[0], s.clique[1]);
    let report = audit(&declique, None, Some(&s.clique), &AuditConfig::default());
    assert!(has_error(&report, "clique-p2p"), "{}", report.render());

    // Corruption 3: drop a classified link entirely; paths crossing it
    // now hit an unknown link, which S10's total-coverage promise forbids.
    let mut dropped = s.rels.clone();
    let victim = dropped
        .c2p_pairs()
        .next()
        .expect("inference produced at least one c2p link");
    let _ = dropped.remove(victim.0, victim.1);
    let report = audit(
        &dropped,
        Some(&s.sanitized),
        None,
        &AuditConfig::default(),
    );
    assert!(
        has_error(&report, "valley-unknown-links"),
        "{}",
        report.render()
    );
}

#[test]
fn corrupted_path_arena_fails_loudly() {
    use asrank_core::audit::{check_arena, AuditReport};
    use asrank_core::PathArena;

    let interner = || AsnInterner::from_ases([Asn(1), Asn(2), Asn(3)]);

    // A well-formed raw arena passes: two distinct ascending paths.
    let clean = PathArena::from_raw(interner(), vec![0, 2, 4], vec![0, 1, 1, 2], vec![1, 3]);
    let mut report = AuditReport::default();
    check_arena(&clean, &mut report);
    assert!(report.passed(), "{}", report.render());
    assert!(
        report.findings.iter().any(|f| f.check == "path-arena"),
        "{}",
        report.render()
    );

    // Each corruption shape must raise a path-arena Error.
    let corrupted = [
        // Offsets not monotone.
        PathArena::from_raw(interner(), vec![0, 3, 2], vec![0, 1, 1, 2], vec![1, 1]),
        // Id out of interner range.
        PathArena::from_raw(interner(), vec![0, 2, 4], vec![0, 1, 1, 9], vec![1, 1]),
        // Zero multiplicity.
        PathArena::from_raw(interner(), vec![0, 2, 4], vec![0, 1, 1, 2], vec![1, 0]),
        // Duplicate path: dedup was not actually performed.
        PathArena::from_raw(interner(), vec![0, 2, 4], vec![0, 1, 0, 1], vec![1, 1]),
    ];
    for (i, arena) in corrupted.iter().enumerate() {
        let mut report = AuditReport::default();
        check_arena(arena, &mut report);
        assert!(
            has_error(&report, "path-arena"),
            "corruption {i} not caught: {}",
            report.render()
        );
    }
}

#[test]
#[ignore = "medium-scale: ~seconds; run with --ignored"]
fn clean_medium_scale_inference_passes() {
    let s = run_pipeline(&TopologyConfig::medium(), 7, 60);
    let report = audit(
        &s.rels,
        Some(&s.sanitized),
        Some(&s.clique),
        &AuditConfig::default(),
    );
    assert!(report.passed(), "{}", report.render());
}
