//! Property and invalidation tests for the staged engine:
//!
//! * on random path sets, `Snapshot::inference()` must be bit-identical
//!   to `infer_monolithic` — at `Parallelism::sequential()` and
//!   `Parallelism::threads(4)`, and under every ablation switch;
//! * changing an S7-only knob (`degree_flip_ratio`) must invalidate
//!   exactly S7-and-downstream: S1–S6, the arena, and the observed-link
//!   list keep their single run and are served as cache hits;
//! * a second command over the same snapshot (the `rank`-after-`infer`
//!   shape) recomputes nothing upstream — zero redundant sanitize /
//!   arena / degree work, pinned via the cache counters.

use asrank_core::engine::Snapshot;
use asrank_core::pipeline::{infer_monolithic, InferenceConfig};
use asrank_types::prelude::*;
use proptest::prelude::*;

/// Random raw path sets over a small ASN universe — same shape as the
/// cone equivalence suite, so sanitization sees loops, prepending, and
/// overlapping paths.
fn paths_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(1u32..40, 2..6), 1..40)
}

fn path_set(paths: &[Vec<u32>]) -> PathSet {
    paths
        .iter()
        .enumerate()
        .map(|(i, p)| PathSample {
            vp: Asn(p[0]),
            prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
            path: AsPath::from_u32s(p.iter().copied()),
        })
        .collect()
}

/// Assert the engine and the monolithic pipeline produce bit-identical
/// inferences for one config.
fn assert_engine_matches(ps: &PathSet, cfg: &InferenceConfig) {
    let mono = infer_monolithic(ps, cfg);
    let mut snap = Snapshot::new(ps, cfg.clone());
    let inf = snap.inference().expect("engine inference");
    assert_eq!(inf.relationships, mono.relationships, "relationships differ");
    assert_eq!(inf.clique, mono.clique, "clique differs");
    assert_eq!(inf.report, mono.report, "report differs");
}

proptest! {
    #[test]
    fn engine_matches_monolithic_on_random_topologies(paths in paths_strategy()) {
        let ps = path_set(&paths);
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let mut cfg = InferenceConfig::default();
            cfg.parallelism = par;
            assert_engine_matches(&ps, &cfg);
        }
    }

    #[test]
    fn engine_matches_monolithic_under_ablations(paths in paths_strategy()) {
        let ps = path_set(&paths);
        for flag in 0..5usize {
            let mut cfg = InferenceConfig::default();
            match flag {
                0 => cfg.ablation.no_poison_filter = true,
                1 => cfg.ablation.no_vp_step = true,
                2 => cfg.ablation.no_anomaly_repair = true,
                3 => cfg.ablation.no_stub_clique = true,
                _ => cfg.ablation.no_providerless = true,
            }
            assert_engine_matches(&ps, &cfg);
        }
    }
}

/// A fixed two-tier hierarchy for the cache-behavior tests: clique
/// 1–2–3, transits 10/11, stubs 20–23 — enough structure for every
/// stage to produce non-trivial output deterministically.
fn fixture() -> PathSet {
    let raw: &[&[u32]] = &[
        &[20, 10, 1, 2, 11, 21],
        &[20, 10, 1, 3, 11, 22],
        &[21, 11, 2, 1, 10, 20],
        &[22, 11, 3, 2, 10, 23],
        &[23, 10, 1, 2, 11, 21],
        &[20, 10, 2, 3, 11, 22],
        &[21, 11, 3, 1, 10, 23],
    ];
    path_set(&raw.iter().map(|p| p.to_vec()).collect::<Vec<_>>())
}

/// Upstream stages that are looked up (and must hit) while re-running
/// S7-and-downstream: every direct input of a re-run stage.
const UPSTREAM_HIT_ON_S7_CHANGE: &[&str] = &[
    "s1_sanitize",
    "s2_degrees",
    "s3_clique",
    "path_arena",
    "s4_poison",
    "observed_links",
    "s6_vp_providers",
];

const S7_AND_DOWNSTREAM: &[&str] = &[
    "s7_anomaly_repair",
    "s8_stub_clique",
    "s9_providerless",
    "s10_p2p",
    "s11_inference",
];

#[test]
fn s7_config_change_invalidates_only_s7_and_downstream() {
    let ps = fixture();
    let mut snap = Snapshot::new(&ps, InferenceConfig::default());
    snap.inference().expect("cold inference");
    let before = snap.stage_report();

    let mut changed = InferenceConfig::default();
    changed.degree_flip_ratio = 25.0;
    snap.set_config(changed);
    snap.inference().expect("warm inference after S7 knob change");
    let after = snap.stage_report();

    for name in UPSTREAM_HIT_ON_S7_CHANGE {
        let (b, a) = (before.get(name).unwrap(), after.get(name).unwrap());
        assert_eq!(a.runs, b.runs, "{name} recomputed after an S7-only change");
        assert_eq!(a.misses, b.misses, "{name} took a cache miss");
        assert!(a.hits > b.hits, "{name} was never served from cache");
    }
    // S5 sits behind the cache-hit S6, so the warm run never even looks
    // it up — strictly less work than a hit.
    let (b, a) = (
        before.get("s5_topdown").unwrap(),
        after.get("s5_topdown").unwrap(),
    );
    assert_eq!(a.runs, b.runs, "s5_topdown recomputed after an S7-only change");
    assert_eq!(a.misses, b.misses);
    for name in S7_AND_DOWNSTREAM {
        let (b, a) = (before.get(name).unwrap(), after.get(name).unwrap());
        assert_eq!(a.runs, b.runs + 1, "{name} should re-run exactly once");
    }
}

#[test]
fn second_command_over_same_snapshot_recomputes_nothing_upstream() {
    let ps = fixture();
    let mut snap = Snapshot::new(&ps, InferenceConfig::default());

    // First command: `infer`.
    snap.inference().expect("inference");
    let before = snap.stage_report();

    // Second command: `rank` pulls the inference again plus the
    // recursive cone.
    snap.inference().expect("inference (warm)");
    snap.recursive_cone().expect("recursive cone");
    let after = snap.stage_report();

    for name in ["s1_sanitize", "s2_degrees", "path_arena"] {
        let (b, a) = (before.get(name).unwrap(), after.get(name).unwrap());
        assert_eq!(a.runs, 1, "{name} ran more than once across commands");
        assert_eq!(a.misses, b.misses, "{name} took a fresh cache miss");
    }
    // The warm inference materialization is a pure cache hit, and the
    // cone stage's lookup of its s11 input is a second one.
    let (b, a) = (
        before.get("s11_inference").unwrap(),
        after.get("s11_inference").unwrap(),
    );
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.hits, b.hits + 2);
    assert_eq!(a.misses, b.misses);
    // Only the cone stage itself did new work.
    assert_eq!(after.get("cone_recursive").unwrap().runs, 1);
}

