//! Property tests pinning the PR8 cache-blocked cone sweep to the PR3
//! unblocked sweep: for random topologies, every forced block width
//! (including degenerate 1-id blocks and widths larger than the id
//! space), and both thread budgets, the blocked merge must produce
//! element-identical cones — and, one level down, the blocked pair
//! merge must produce the bit-identical sorted pair list. The block
//! width is a cache-layout knob exactly like the thread count: it must
//! never be observable in any output.

use asrank_core::cone::{bgp_raw_sweep_pairs, merge_sweep_pairs_blocked, merge_sweep_pairs_unblocked};
use asrank_core::{sanitize, CustomerCones, PathArena, SanitizeConfig, SanitizedPaths};
use asrank_types::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// Forced owner-block widths the sweep must be invariant over: 0 is
/// the automatic cache-sized width, 1 makes every owner its own block,
/// 3/17 force ragged boundaries, 256 typically covers the whole small
/// universe in one block (the unblocked fast path).
const BLOCK_WIDTHS: [usize; 5] = [0, 1, 3, 17, 256];

/// Random raw path sets over a small ASN universe (same shape as
/// `cone_equivalence.rs`, the unblocked sweep's own oracle suite).
fn paths_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(1u32..40, 2..6), 1..40)
}

/// Random mixed relationship edges: `(x, y, peer?)` — p2p when the
/// flag is set, c2p (x customer of y) otherwise.
fn mixed_edges_strategy() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    proptest::collection::vec((1u32..40, 1u32..40, any::<bool>()), 0..80)
}

fn sanitized_from(paths: &[Vec<u32>]) -> SanitizedPaths {
    let ps: PathSet = paths
        .iter()
        .enumerate()
        .map(|(i, p)| PathSample {
            vp: Asn(p[0]),
            prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
            path: AsPath::from_u32s(p.iter().copied()),
        })
        .collect();
    sanitize(&ps, &SanitizeConfig::default())
}

fn mixed_rels(edges: &[(u32, u32, bool)]) -> RelationshipMap {
    let mut rels = RelationshipMap::new();
    for &(x, y, peer) in edges {
        if x == y {
            continue;
        }
        if peer {
            rels.insert_p2p(Asn(x), Asn(y));
        } else {
            rels.insert_c2p(Asn(x), Asn(y));
        }
    }
    rels
}

/// Deterministic prefix table over a subset of the ASes, so weighted
/// cone sizes are part of the equivalence check too.
fn prefixes_for(edges: &[(u32, u32, bool)]) -> HashMap<Asn, Vec<Ipv4Prefix>> {
    let mut table: HashMap<Asn, Vec<Ipv4Prefix>> = HashMap::new();
    for &(x, y, _) in edges {
        for a in [x, y] {
            if a % 3 == 0 {
                table.entry(Asn(a)).or_insert_with(|| {
                    (0..a % 5)
                        .map(|i| Ipv4Prefix::new((a << 16) | (i << 8), 24).unwrap())
                        .collect()
                });
            }
        }
    }
    table
}

fn assert_same_cones(
    blocked: &CustomerCones,
    unblocked: &CustomerCones,
    block: usize,
    par: Parallelism,
) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(
        blocked.len(),
        unblocked.len(),
        "cone count differs at block {} {:?}",
        block,
        par
    );
    for asn in unblocked.ases() {
        prop_assert_eq!(
            blocked.members(asn),
            unblocked.members(asn),
            "members of {} differ at block {} {:?}",
            asn,
            block,
            par
        );
        prop_assert_eq!(
            blocked.size(asn),
            unblocked.size(asn),
            "size of {} differs at block {} {:?}",
            asn,
            block,
            par
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn blocked_bgp_observed_matches_unblocked(
        paths in paths_strategy(),
        edges in mixed_edges_strategy(),
    ) {
        let sanitized = sanitized_from(&paths);
        let rels = mixed_rels(&edges);
        let prefixes = prefixes_for(&edges);
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let arena = PathArena::build_with(&sanitized, par);
            let unblocked = CustomerCones::bgp_observed_from_arena_unblocked(
                &arena, &rels, Some(&prefixes), par,
            );
            for block in BLOCK_WIDTHS {
                let blocked = CustomerCones::bgp_observed_from_arena_with_block(
                    &arena, &rels, Some(&prefixes), par, block,
                );
                assert_same_cones(&blocked, &unblocked, block, par)?;
            }
        }
    }

    #[test]
    fn blocked_provider_peer_matches_unblocked(
        paths in paths_strategy(),
        edges in mixed_edges_strategy(),
    ) {
        let sanitized = sanitized_from(&paths);
        let rels = mixed_rels(&edges);
        let prefixes = prefixes_for(&edges);
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let arena = PathArena::build_with(&sanitized, par);
            let unblocked = CustomerCones::provider_peer_observed_from_arena_unblocked(
                &arena, &rels, Some(&prefixes), par,
            );
            for block in BLOCK_WIDTHS {
                let blocked = CustomerCones::provider_peer_observed_from_arena_with_block(
                    &arena, &rels, Some(&prefixes), par, block,
                );
                assert_same_cones(&blocked, &unblocked, block, par)?;
            }
        }
    }

    #[test]
    fn blocked_pair_merge_is_bit_identical(
        paths in paths_strategy(),
        edges in mixed_edges_strategy(),
    ) {
        // One level below the cones: the merged pair lists themselves
        // must be bit-identical, not merely materialize to equal sets.
        let sanitized = sanitized_from(&paths);
        let rels = mixed_rels(&edges);
        let arena = PathArena::build_with(&sanitized, Parallelism::sequential());
        let raw = bgp_raw_sweep_pairs(&arena, &rels, Parallelism::sequential());
        let reference = merge_sweep_pairs_unblocked(&raw, arena.num_ases());
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            for block in BLOCK_WIDTHS {
                let merged = merge_sweep_pairs_blocked(&raw, arena.num_ases(), block, par);
                prop_assert_eq!(
                    &merged,
                    &reference,
                    "merged pairs differ at block {} {:?}",
                    block,
                    par
                );
            }
        }
    }
}
