//! Borrowed frame views must be indistinguishable from the owned decode:
//! for every artifact kind, every accessor the view exposes agrees with
//! the owned structure rebuilt by `decode_artifact` — at sequential and
//! parallel engine runs, since the frames themselves must not depend on
//! parallelism. And a view constructor must reject damaged frames before
//! any query touches them.

use asrank_core::engine::Snapshot;
use asrank_core::persist::view::{
    pathset_fingerprint_from_frame, ArenaView, CliqueView, ConeView, InferenceView, KeptView,
    LinksView, PathsetView, SanitizedView, StepsView,
};
use asrank_core::persist::{encode_pathset, kind, tag_for_stage};
use asrank_core::pipeline::InferenceConfig;
use asrank_core::{decode_artifact, encode_artifact, pathset_fingerprint, Artifact};
use asrank_types::{Asn, AsPath, Ipv4Prefix, Parallelism, PathSample, PathSet};
use proptest::prelude::*;

fn path_set(paths: Vec<Vec<u32>>) -> PathSet {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, raw)| PathSample {
            vp: Asn(raw[0]),
            prefix: Ipv4Prefix::new((i as u32) << 12, 20).unwrap(),
            path: AsPath::from_u32s(raw),
        })
        .collect()
}

/// Probe ASNs: everything observed plus a few certainly-unknown ones, so
/// lookups exercise both hit and miss paths.
fn probes(ps: &PathSet) -> Vec<Asn> {
    let mut seen: Vec<Asn> = ps.iter().flat_map(|s| s.path.iter()).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.extend([Asn(0), Asn(99_999), Asn(u32::MAX)]);
    seen
}

/// Compare every view accessor of `bytes` against the owned decode of
/// the same frame.
fn assert_view_matches_owned(stage: &str, bytes: &[u8], probes: &[Asn]) {
    let tag = tag_for_stage(stage).expect("stage tag");
    let owned = decode_artifact(bytes, tag).expect("owned decode");
    match (tag, &owned) {
        (kind::SANITIZED, Artifact::Sanitized(s)) => {
            let v = SanitizedView::open(bytes).expect("open sanitized");
            assert_eq!(v.report, s.report);
            assert_eq!(v.samples.len(), s.samples.len());
            for (sv, so) in v.samples.iter().zip(s.samples.iter()) {
                assert_eq!(sv.vp, so.vp);
                assert_eq!(sv.prefix, so.prefix);
                let hops: Vec<u32> = so.path.iter().map(|a| a.0).collect();
                assert_eq!(sv.hops.to_vec(), hops);
            }
        }
        (kind::DEGREES, Artifact::Degrees(t)) => {
            let v = asrank_core::persist::view::DegreesView::open_frame(bytes).expect("open degrees");
            assert_eq!(v.len(), t.len());
            for (i, &asn) in t.ranked().iter().enumerate() {
                let (va, vt, vn) = v.entry(i).expect("degree entry");
                assert_eq!(va, asn);
                assert_eq!(vt as usize, t.transit_degree(asn));
                assert_eq!(vn as usize, t.node_degree(asn));
            }
            assert_eq!(v.entry(t.len()), None);
        }
        (kind::CLIQUE, Artifact::Clique(c)) => {
            let v = CliqueView::open(bytes).expect("open clique");
            let want: Vec<u32> = c.iter().map(|a| a.0).collect();
            assert_eq!(v.asns.to_vec(), want);
        }
        (kind::ARENA, Artifact::Arena(a)) => {
            let v = ArenaView::open(bytes).expect("open arena");
            assert_eq!(v.len(), a.len());
            let want: Vec<u32> = a.interner().iter().map(|(_, asn)| asn.0).collect();
            assert_eq!(v.interner.to_vec(), want);
            assert_eq!(v.offsets.to_vec(), a.offsets());
            assert_eq!(v.ids.to_vec(), a.ids());
            for p in 0..a.len() {
                assert_eq!(v.path(p).expect("path").to_vec(), a.path(p));
                assert_eq!(v.multiplicity.get(p), Some(a.multiplicity(p)));
            }
            assert!(v.path(a.len()).is_none());
        }
        (kind::KEPT, Artifact::Kept(k)) => {
            let v = KeptView::open(bytes).expect("open kept");
            assert_eq!(v.discarded(), k.discarded);
            assert_eq!(v.len(), k.kept.len());
            for (i, &b) in k.kept.iter().enumerate() {
                assert_eq!(v.get(i), Some(b));
            }
            assert_eq!(v.get(k.kept.len()), None);
        }
        (kind::LINKS, Artifact::Links(links)) => {
            let v = LinksView::open(bytes).expect("open links");
            assert_eq!(v.len(), links.len());
            let got: Vec<_> = v.iter().collect();
            assert_eq!(&got, links.as_ref());
            assert_eq!(v.entry(links.len()), None);
        }
        (kind::STEPS, Artifact::Steps(s)) => {
            let v = StepsView::open(bytes).expect("open steps");
            assert_eq!(v.report, s.report);
            assert_rels_match(&v.rels, &s.rels, probes);
        }
        (kind::INFERENCE, Artifact::Inference(inf)) => {
            let (v, layout, report) = InferenceView::open(bytes).expect("open inference");
            assert_eq!(report, inf.report);
            assert_rels_match(&v.rels, &inf.relationships, probes);
            let want: Vec<u32> = inf.clique.iter().map(|a| a.0).collect();
            assert_eq!(v.clique.to_vec(), want);
            assert_eq!(v.degrees.len(), inf.degrees.len());
            for (i, &asn) in inf.degrees.ranked().iter().enumerate() {
                let (va, vt, vn) = v.degrees.entry(i).expect("degree entry");
                assert_eq!((va, vt as usize, vn as usize), (
                    asn,
                    inf.degrees.transit_degree(asn),
                    inf.degrees.node_degree(asn)
                ));
            }
            // The reconstituted view answers identically to the opened one.
            let r = InferenceView::from_layout(bytes, &layout);
            for &x in probes {
                for &y in probes {
                    assert_eq!(r.rels.get(x, y), v.rels.get(x, y));
                }
            }
        }
        (kind::CONE, Artifact::Cone(c)) => {
            let (v, layout) = ConeView::open(bytes).expect("open cone");
            assert_eq!(v.len(), c.len());
            for &x in probes {
                let vs = v.size(x);
                let os = c.size(x);
                assert_eq!((vs.ases, vs.prefixes, vs.addresses), (os.ases, os.prefixes, os.addresses));
                let want: Vec<u32> = c.members(x).iter().map(|a| a.0).collect();
                assert_eq!(v.members(x).to_vec(), want, "members of {x:?}");
                for &y in probes {
                    assert_eq!(v.contains(x, y), c.contains(x, y), "contains({x:?},{y:?})");
                }
            }
            let got: Vec<_> = v.iter_sizes().map(|(a, s)| (a, s.ases)).collect();
            let want: Vec<_> = c.iter_sizes().map(|(a, s)| (a, s.ases)).collect();
            assert_eq!(got, want);
            let r = ConeView::from_layout(bytes, &layout);
            for &x in probes {
                assert_eq!(r.size(x).ases, v.size(x).ases);
            }
        }
        other => panic!("unhandled artifact kind {}", other.0),
    }
}

fn assert_rels_match(
    view: &asrank_core::persist::view::RelsView<'_>,
    owned: &asrank_types::RelationshipMap,
    probes: &[Asn],
) {
    assert_eq!(view.len(), owned.len());
    let mut want: Vec<_> = owned.iter().collect();
    want.sort_unstable_by_key(|&(l, _)| l);
    let got: Vec<_> = view.iter().collect();
    assert_eq!(got, want);
    for &x in probes {
        for &y in probes {
            assert_eq!(view.get(x, y), owned.get(x, y), "get({x:?},{y:?})");
            assert_eq!(
                view.orientation(x, y),
                owned.orientation(x, y),
                "orientation({x:?},{y:?})"
            );
        }
    }
}

fn assert_all_stages_match(ps: &PathSet, par: Parallelism) {
    let mut cfg = InferenceConfig::default();
    cfg.parallelism = par;
    let mut snap = Snapshot::new(ps, cfg);
    let pr = probes(ps);
    for stage in Snapshot::stage_names() {
        let artifact = snap.materialize(stage).expect("materialize");
        let bytes = encode_artifact(&artifact);
        assert_view_matches_owned(stage, &bytes, &pr);
    }
    // PATHSET is not an engine stage; check it directly, fingerprint too.
    let bytes = encode_pathset(ps);
    let v = PathsetView::open(&bytes).expect("open pathset");
    assert_eq!(v.samples.len(), ps.len());
    for (sv, so) in v.samples.iter().zip(ps.iter()) {
        assert_eq!(sv.vp, so.vp);
        assert_eq!(sv.prefix, so.prefix);
        let hops: Vec<u32> = so.path.iter().map(|a| a.0).collect();
        assert_eq!(sv.hops.to_vec(), hops);
    }
    assert_eq!(
        pathset_fingerprint_from_frame(&bytes).expect("frame fingerprint"),
        pathset_fingerprint(ps),
        "streamed fingerprint must equal the owned one"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn views_match_owned_decode_for_every_kind(
        paths in prop::collection::vec(prop::collection::vec(1u32..40, 2..6), 1..30),
    ) {
        let ps = path_set(paths);
        assert_all_stages_match(&ps, Parallelism::sequential());
        assert_all_stages_match(&ps, Parallelism::threads(4));
    }
}

/// A two-tier hierarchy big enough that every stage has real content.
fn fixture() -> PathSet {
    path_set(vec![
        vec![20, 10, 1, 2, 11, 21],
        vec![20, 10, 1, 3, 12, 22],
        vec![21, 11, 2, 1, 10, 20],
        vec![21, 11, 2, 3, 12, 23],
        vec![22, 12, 3, 1, 10, 20],
        vec![22, 12, 3, 2, 11, 21],
        vec![23, 12, 3, 2, 11, 20],
    ])
}

fn open_any(stage: &str, bytes: &[u8]) -> bool {
    match tag_for_stage(stage).unwrap() {
        kind::SANITIZED => SanitizedView::open(bytes).is_ok(),
        kind::DEGREES => asrank_core::persist::view::DegreesView::open_frame(bytes).is_ok(),
        kind::CLIQUE => CliqueView::open(bytes).is_ok(),
        kind::ARENA => ArenaView::open(bytes).is_ok(),
        kind::KEPT => KeptView::open(bytes).is_ok(),
        kind::LINKS => LinksView::open(bytes).is_ok(),
        kind::STEPS => StepsView::open(bytes).is_ok(),
        kind::INFERENCE => InferenceView::open(bytes).is_ok(),
        kind::CONE => ConeView::open(bytes).is_ok(),
        _ => unreachable!(),
    }
}

/// Damaged frames must be rejected by `open` — bit flips break the
/// checksum, truncations break the framing — so no query can ever run
/// over corrupt bytes.
#[test]
fn view_constructors_reject_damaged_frames() {
    let ps = fixture();
    let mut snap = Snapshot::new(&ps, InferenceConfig::default());
    for stage in Snapshot::stage_names() {
        let bytes = encode_artifact(&snap.materialize(stage).expect("materialize"));
        assert!(open_any(stage, &bytes), "{stage}: pristine frame must open");
        for pos in [0, 5, 9, 12, HEADER_MID, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            let at = pos % bad.len();
            bad[at] ^= 0x10;
            assert!(
                !open_any(stage, &bad),
                "{stage}: flip at byte {pos} went undetected"
            );
        }
        for cut in [0, 4, HEADER_MID, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                !open_any(stage, &bytes[..cut.min(bytes.len() - 1)]),
                "{stage}: truncation to {cut} went undetected"
            );
        }
    }
    let bytes = encode_pathset(&ps);
    assert!(PathsetView::open(&bytes).is_ok());
    let mut bad = bytes.clone();
    bad[bytes.len() / 2] ^= 0x01;
    assert!(PathsetView::open(&bad).is_err());
    assert!(pathset_fingerprint_from_frame(&bad).is_err());
    assert!(PathsetView::open(&bytes[..bytes.len() - 3]).is_err());
}

const HEADER_MID: usize = 15;
