//! The disk cache must be invisible in the results: a warm snapshot
//! (every stage served from `--cache-dir` files) produces byte-identical
//! artifacts to the cold snapshot that wrote them, at every parallelism
//! level — and damaged cache files are silently recomputed, never
//! trusted and never fatal.

use asrank_core::engine::{Snapshot, StageReport, StageStats};
use asrank_core::pipeline::InferenceConfig;
use asrank_core::{encode_artifact, pathset_fingerprint};
use asrank_types::{Asn, AsPath, Parallelism, PathSample, PathSet};
use proptest::prelude::*;
use std::path::PathBuf;

fn path_set(paths: Vec<Vec<u32>>) -> PathSet {
    let mut ps = PathSet::new();
    for (i, raw) in paths.into_iter().enumerate() {
        let vp = raw[0];
        ps.push(PathSample {
            vp: Asn(vp),
            prefix: asrank_types::Ipv4Prefix::new((i as u32) << 12, 20).unwrap(),
            path: AsPath::from_u32s(raw),
        });
    }
    ps
}

fn totals(report: &StageReport) -> StageStats {
    let mut t = StageStats::default();
    for name in Snapshot::stage_names() {
        if let Some(s) = report.get(name) {
            t.runs += s.runs;
            t.hits += s.hits;
            t.misses += s.misses;
            t.disk_hits += s.disk_hits;
            t.disk_stores += s.disk_stores;
        }
    }
    t
}

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asrank_cache_persist_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Materialize every stage cold (writing the cache), then warm (reading
/// it back), and compare the canonical encoding of each artifact.
fn assert_cold_warm_identical(paths: &PathSet, par: Parallelism, dir: &PathBuf) {
    let mut cfg = InferenceConfig::default();
    cfg.parallelism = par;

    let mut cold = Snapshot::new(paths, cfg.clone()).with_cache_dir(dir);
    let cold_bytes: Vec<Vec<u8>> = Snapshot::stage_names()
        .iter()
        .map(|name| encode_artifact(&cold.materialize(name).unwrap()))
        .collect();
    let cold_totals = totals(&cold.stage_report());
    assert_eq!(cold_totals.disk_hits, 0, "cold run must not hit the cache");
    assert!(
        cold_totals.disk_stores > 0,
        "cold run must populate the cache"
    );

    let mut warm = Snapshot::new(paths, cfg).with_cache_dir(dir);
    let warm_bytes: Vec<Vec<u8>> = Snapshot::stage_names()
        .iter()
        .map(|name| encode_artifact(&warm.materialize(name).unwrap()))
        .collect();
    let warm_totals = totals(&warm.stage_report());
    assert_eq!(warm_totals.runs, 0, "warm run must not recompute any stage");
    assert_eq!(
        warm_totals.disk_hits as usize,
        Snapshot::stage_names().len(),
        "warm run must serve every stage from disk"
    );

    for (name, (c, w)) in Snapshot::stage_names()
        .iter()
        .zip(cold_bytes.iter().zip(warm_bytes.iter()))
    {
        assert_eq!(c, w, "stage {name} differs between cold and warm");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cold_and_warm_snapshots_are_byte_identical(
        paths in prop::collection::vec(prop::collection::vec(1u32..40, 2..6), 1..40),
    ) {
        let ps = path_set(paths);
        for (tag, par) in [("seq", Parallelism::sequential()), ("par4", Parallelism::threads(4))] {
            let dir = tmp_cache(&format!("prop_{tag}_{:016x}", pathset_fingerprint(&ps)));
            assert_cold_warm_identical(&ps, par, &dir);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A two-tier hierarchy big enough that every stage has real content.
fn fixture() -> PathSet {
    path_set(vec![
        vec![20, 10, 1, 2, 11, 21],
        vec![20, 10, 1, 3, 12, 22],
        vec![21, 11, 2, 1, 10, 20],
        vec![21, 11, 2, 3, 12, 23],
        vec![22, 12, 3, 1, 10, 20],
        vec![22, 12, 3, 2, 11, 21],
        vec![23, 12, 3, 2, 11, 20],
    ])
}

#[test]
fn corrupted_cache_entry_recomputes_and_rewrites() {
    let ps = fixture();
    let dir = tmp_cache("corrupt");
    let cfg = InferenceConfig::default();

    let mut cold = Snapshot::new(&ps, cfg.clone()).with_cache_dir(&dir);
    for name in Snapshot::stage_names() {
        cold.materialize(name).unwrap();
    }

    // Bit-flip one byte of every cache file (header, payload, and
    // trailer positions all occur across the set), breaking either the
    // framing or the checksum.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(!files.is_empty());
    let mut originals = Vec::new();
    for (i, file) in files.iter().enumerate() {
        let mut bytes = std::fs::read(file).unwrap();
        originals.push((file.clone(), bytes.clone()));
        let pos = (i * 7) % bytes.len();
        bytes[pos] ^= 0x40;
        std::fs::write(file, &bytes).unwrap();
    }

    // Warm run over the damaged cache: silent recompute, same results,
    // and the damaged entries are rewritten valid.
    let mut warm = Snapshot::new(&ps, cfg.clone()).with_cache_dir(&dir);
    for name in Snapshot::stage_names() {
        let got = encode_artifact(&warm.materialize(name).unwrap());
        let mut reference = Snapshot::new(&ps, cfg.clone()).without_cache();
        let want = encode_artifact(&reference.materialize(name).unwrap());
        assert_eq!(got, want, "stage {name} corrupted by damaged cache");
    }
    let warm_totals = totals(&warm.stage_report());
    assert_eq!(
        warm_totals.disk_hits, 0,
        "no damaged entry may count as a hit"
    );
    assert!(
        warm_totals.disk_stores > 0,
        "damaged entries must be rewritten"
    );

    for (file, original) in originals {
        assert_eq!(
            std::fs::read(&file).unwrap(),
            original,
            "rewritten cache file {} is not valid again",
            file.display()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_version_skewed_entries_fall_back() {
    let ps = fixture();
    let dir = tmp_cache("truncate");
    let cfg = InferenceConfig::default();

    let mut cold = Snapshot::new(&ps, cfg.clone()).with_cache_dir(&dir);
    for name in Snapshot::stage_names() {
        cold.materialize(name).unwrap();
    }
    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    // Truncate half the files, rewrite the version word of the rest.
    for (i, file) in files.iter().enumerate() {
        let bytes = std::fs::read(file).unwrap();
        if i % 2 == 0 {
            std::fs::write(file, &bytes[..bytes.len() / 2]).unwrap();
        } else {
            let mut skew = bytes;
            skew[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
            std::fs::write(file, &skew).unwrap();
        }
    }

    let mut warm = Snapshot::new(&ps, cfg.clone()).with_cache_dir(&dir);
    for name in Snapshot::stage_names() {
        let got = encode_artifact(&warm.materialize(name).unwrap());
        let mut reference = Snapshot::new(&ps, cfg.clone()).without_cache();
        let want = encode_artifact(&reference.materialize(name).unwrap());
        assert_eq!(got, want, "stage {name} diverged after cache damage");
    }
    assert_eq!(totals(&warm.stage_report()).disk_hits, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_configs_do_not_share_entries() {
    let ps = fixture();
    let dir = tmp_cache("cfgsplit");

    let mut a = Snapshot::new(&ps, InferenceConfig::default()).with_cache_dir(&dir);
    a.materialize("s1_sanitize").unwrap();

    // A different sanitize config must miss every entry the first
    // snapshot stored.
    let mut cfg = InferenceConfig::default();
    cfg.sanitize = asrank_core::SanitizeConfig::with_ixps([Asn(999)]);
    let mut b = Snapshot::new(&ps, cfg).with_cache_dir(&dir);
    b.materialize("s1_sanitize").unwrap();
    let t = totals(&b.stage_report());
    assert_eq!(t.disk_hits, 0, "config change must invalidate keys");
    assert!(t.disk_stores > 0);

    let _ = std::fs::remove_dir_all(&dir);
}
