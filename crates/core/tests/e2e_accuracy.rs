//! End-to-end accuracy check: generate → simulate → infer → compare with
//! ground truth. The paper's headline result is ≈99.6 % PPV for c2p and
//! ≈98.7 % for p2p against its (noisy, partial) validation corpora; on
//! clean simulated data with known ground truth the pipeline must do well
//! on c2p and respectably on p2p (peering that is never observed at a VP
//! is invisible by construction).

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_types::prelude::*;
use bgp_sim::{simulate, SimConfig, VpSelection};

struct Accuracy {
    c2p_ppv: f64,
    p2p_ppv: f64,
    c2p_total: usize,
    p2p_total: usize,
}

fn measure(inferred: &RelationshipMap, truth: &RelationshipMap) -> Accuracy {
    let (mut c2p_ok, mut c2p_tot) = (0usize, 0usize);
    let (mut p2p_ok, mut p2p_tot) = (0usize, 0usize);
    for (link, rel) in inferred.iter() {
        let Some(true_rel) = truth.get(link.a, link.b) else {
            continue; // link invented by artifacts; skip in PPV
        };
        match rel.kind() {
            RelationshipKind::C2p => {
                c2p_tot += 1;
                if rel == true_rel {
                    c2p_ok += 1;
                }
            }
            RelationshipKind::P2p => {
                p2p_tot += 1;
                if true_rel.kind() == RelationshipKind::P2p {
                    p2p_ok += 1;
                }
            }
            RelationshipKind::S2s => {}
        }
    }
    Accuracy {
        c2p_ppv: c2p_ok as f64 / c2p_tot.max(1) as f64,
        p2p_ppv: p2p_ok as f64 / p2p_tot.max(1) as f64,
        c2p_total: c2p_tot,
        p2p_total: p2p_tot,
    }
}

#[test]
fn pipeline_recovers_relationships_on_clean_data() {
    let topo = generate(&TopologyConfig::small(), 42);
    let mut sim = SimConfig::defaults(42);
    sim.vp_selection = VpSelection::Count(30);
    sim.full_feed_fraction = 0.5;
    let out = simulate(&topo, &sim);

    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inf = infer(&out.paths, &InferenceConfig::with_ixps(ixps));

    let acc = measure(&inf.relationships, &topo.ground_truth.relationships);
    assert!(
        acc.c2p_total > 300,
        "too few c2p inferences: {}",
        acc.c2p_total
    );
    assert!(
        acc.p2p_total > 20,
        "too few p2p inferences: {}",
        acc.p2p_total
    );
    assert!(
        acc.c2p_ppv > 0.93,
        "c2p PPV {:.3} below floor ({} links)",
        acc.c2p_ppv,
        acc.c2p_total
    );
    assert!(
        acc.p2p_ppv > 0.75,
        "p2p PPV {:.3} below floor ({} links)",
        acc.p2p_ppv,
        acc.p2p_total
    );
    println!(
        "c2p PPV {:.4} ({} links), p2p PPV {:.4} ({} links)",
        acc.c2p_ppv, acc.c2p_total, acc.p2p_ppv, acc.p2p_total
    );
}

#[test]
fn clique_recovered_on_clean_data() {
    let topo = generate(&TopologyConfig::small(), 7);
    let mut sim = SimConfig::defaults(7);
    sim.vp_selection = VpSelection::Count(40);
    sim.full_feed_fraction = 0.6;
    let out = simulate(&topo, &sim);
    let inf = infer(&out.paths, &InferenceConfig::default());

    let truth = topo.ground_truth.clique();
    let inferred = &inf.clique;
    let hit = inferred.iter().filter(|a| truth.contains(a)).count();
    let precision = hit as f64 / inferred.len().max(1) as f64;
    let recall = hit as f64 / truth.len().max(1) as f64;
    assert!(
        precision > 0.8 && recall > 0.8,
        "clique precision {precision:.2} recall {recall:.2}: inferred {inferred:?} vs truth {truth:?}"
    );
}

#[test]
fn pipeline_survives_artifacts() {
    let topo = generate(&TopologyConfig::small(), 99);
    let clique = topo.ground_truth.clique();
    let mut sim = SimConfig::defaults(99);
    sim.vp_selection = VpSelection::Count(30);
    sim.anomalies = bgp_sim::AnomalyConfig::realistic(clique);
    let out = simulate(&topo, &sim);

    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inf = infer(&out.paths, &InferenceConfig::with_ixps(ixps));
    let acc = measure(&inf.relationships, &topo.ground_truth.relationships);
    assert!(
        acc.c2p_ppv > 0.90,
        "c2p PPV {:.3} under artifacts ({} links)",
        acc.c2p_ppv,
        acc.c2p_total
    );
    // Sanitization must have fired.
    assert!(inf.report.sanitize.compressed_prepending > 0);
}
