//! Determinism pin: the full inference pipeline and every cone
//! computation must produce **bit-identical** output whether they run
//! single-threaded or fanned out over worker threads. Every parallel
//! stage in the crate either reassembles chunk results in input order or
//! merges with an order-independent operation, so this must hold exactly
//! — any drift is a bug, not noise.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::cone::ConeSets;
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::sanitize::sanitize_with;
use asrank_types::prelude::*;
use bgp_sim::{simulate, SimConfig, VpSelection};

fn simulated_paths(seed: u64) -> PathSet {
    let topo = generate(&TopologyConfig::tiny(), seed);
    let sim = simulate(
        &topo,
        &SimConfig {
            vp_selection: VpSelection::Count(12),
            ..SimConfig::defaults(seed)
        },
    );
    sim.paths
}

#[test]
fn pipeline_output_identical_across_thread_counts() {
    let paths = simulated_paths(42);

    let infer_with = |par: Parallelism| {
        let cfg = InferenceConfig {
            parallelism: par,
            ..Default::default()
        };
        infer(&paths, &cfg)
    };

    let seq = infer_with(Parallelism::sequential());
    for par in [Parallelism::threads(2), Parallelism::threads(7), Parallelism::auto()] {
        let other = infer_with(par);
        assert_eq!(
            seq.relationships, other.relationships,
            "RelationshipMap differs at {par}"
        );
        assert_eq!(seq.clique, other.clique, "clique differs at {par}");
        assert_eq!(seq.report, other.report, "report differs at {par}");
    }
}

#[test]
fn cone_sizes_identical_across_thread_counts() {
    let paths = simulated_paths(7);
    let cfg = InferenceConfig::default();
    let inference = infer(&paths, &cfg);
    let clean = sanitize_with(&paths, &cfg.sanitize, Parallelism::sequential());

    let seq = ConeSets::compute_with(
        &clean,
        &inference.relationships,
        None,
        Parallelism::sequential(),
    );
    for par in [Parallelism::threads(3), Parallelism::auto()] {
        let other = ConeSets::compute_with(&clean, &inference.relationships, None, par);
        for (name, a, b) in [
            ("recursive", &seq.recursive, &other.recursive),
            ("bgp_observed", &seq.bgp_observed, &other.bgp_observed),
            (
                "provider_peer_observed",
                &seq.provider_peer_observed,
                &other.provider_peer_observed,
            ),
        ] {
            assert_eq!(a.len(), b.len(), "{name} coverage differs at {par}");
            for (x, y) in a.iter_sizes().zip(b.iter_sizes()) {
                assert_eq!(x, y, "{name} sizes differ at {par}");
            }
            for ((xa, xm), (ya, ym)) in a.iter_members().zip(b.iter_members()) {
                assert_eq!(xa, ya, "{name} AS order differs at {par}");
                assert_eq!(xm, ym, "{name} members differ at {par}");
            }
        }
    }
}

#[test]
fn sanitization_identical_across_thread_counts() {
    let paths = simulated_paths(99);
    let cfg = Default::default();
    let seq = sanitize_with(&paths, &cfg, Parallelism::sequential());
    let par = sanitize_with(&paths, &cfg, Parallelism::threads(5));
    assert_eq!(seq.report, par.report);
    assert_eq!(seq.samples.len(), par.samples.len());
    for (a, b) in seq.samples.iter().zip(&par.samples) {
        assert_eq!(a.vp, b.vp);
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.path, b.path);
    }
}
