//! # asrank-baselines
//!
//! The relationship-inference algorithms the paper compares against, each
//! consuming the same [`asrank_types::PathSet`] and producing the same
//! [`asrank_types::RelationshipMap`] so the validation framework can
//! score all of them identically:
//!
//! * [`gao`] — Gao's classic degree-based algorithm (ToN 2001): find the
//!   top provider of each path by node degree, vote uphill/downhill,
//!   classify by vote counts, then mark near-equal-degree top links as
//!   peering.
//! * [`xia_gao`] — the Xia & Gao (2004) extension: start from a *seed* of
//!   known relationships (in the paper, RPSL-derived; here, a validation
//!   corpus sample), locate each path's peak using the seed, and infer
//!   the rest under the valley-free constraint.
//! * [`sark`] — the Subramanian et al. (INFOCOM 2002) multi-vantage-point
//!   heuristic: per-VP BFS levels, combined across views; links between
//!   similarly-ranked ASes become p2p, others c2p.
//! * [`degree`] — the naive floor: point c2p at the higher node degree
//!   unless the two degrees are within a tolerance band (then p2p).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod degree;
pub mod gao;
pub mod sark;
pub mod xia_gao;

pub use degree::{degree_heuristic, DegreeHeuristicConfig};
pub use gao::{gao_infer, GaoConfig};
pub use sark::{sark_infer, SarkConfig};
pub use xia_gao::{xia_gao_infer, XiaGaoConfig};

use asrank_types::{PathSet, RelationshipMap};

/// A uniform handle over every baseline, so experiment harnesses can
/// sweep algorithms generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Gao (2001).
    Gao,
    /// Xia & Gao (2004) — runs with an empty seed unless invoked through
    /// [`xia_gao::xia_gao_infer`] directly.
    XiaGao,
    /// Subramanian et al. (2002).
    Sark,
    /// Naive degree heuristic.
    Degree,
}

impl Baseline {
    /// Human-readable name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Gao => "Gao",
            Baseline::XiaGao => "Xia-Gao",
            Baseline::Sark => "SARK",
            Baseline::Degree => "Degree",
        }
    }

    /// Run the baseline with default parameters.
    pub fn run(&self, paths: &PathSet) -> RelationshipMap {
        match self {
            Baseline::Gao => gao_infer(paths, &GaoConfig::default()),
            Baseline::XiaGao => {
                xia_gao_infer(paths, &RelationshipMap::new(), &XiaGaoConfig::default())
            }
            Baseline::Sark => sark_infer(paths, &SarkConfig::default()),
            Baseline::Degree => degree_heuristic(paths, &DegreeHeuristicConfig::default()),
        }
    }

    /// All baselines, in report order.
    pub fn all() -> [Baseline; 4] {
        [
            Baseline::Gao,
            Baseline::XiaGao,
            Baseline::Sark,
            Baseline::Degree,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::{AsPath, Asn, Ipv4Prefix, PathSample};

    #[test]
    fn every_baseline_runs_on_a_tiny_input() {
        let ps: PathSet = [PathSample {
            vp: Asn(9),
            prefix: "10.0.0.0/24".parse::<Ipv4Prefix>().unwrap(),
            path: AsPath::from_u32s([9, 1, 5]),
        }]
        .into_iter()
        .collect();
        for b in Baseline::all() {
            let rels = b.run(&ps);
            assert!(rels.len() <= 2, "{} produced too many links", b.name());
            assert!(!b.name().is_empty());
        }
    }
}
