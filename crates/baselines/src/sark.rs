//! SARK — the Subramanian/Agarwal/Rexford/Katz multi-vantage-point
//! heuristic (INFOCOM 2002).
//!
//! Each vantage point's view of the AS graph is layered by breadth-first
//! "levels": the VP's own AS and whatever it takes to reach the top is
//! inverted so that higher level ≈ closer to the core. Combining the
//! per-view verdicts: a link whose endpoints are ranked equally in most
//! views is peering; otherwise the lower-ranked AS is the customer. SARK
//! needs no degree assumption, but its per-view layering conflates
//! peering with transit near the edges — the weakness the ASRank paper's
//! comparison surfaces.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// SARK parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SarkConfig {
    /// A link is p2p when at least this fraction of views rank its
    /// endpoints at equal levels.
    pub equal_fraction: f64,
}

impl Default for SarkConfig {
    fn default() -> Self {
        SarkConfig {
            equal_fraction: 0.5,
        }
    }
}

/// Run the SARK heuristic.
pub fn sark_infer(paths: &PathSet, cfg: &SarkConfig) -> RelationshipMap {
    // Group distinct paths per VP (one "view" each).
    let mut views: HashMap<Asn, HashSet<AsPath>> = HashMap::new();
    for s in paths.iter() {
        let clean = s.path.compress_prepending();
        if clean.len() >= 2 && !clean.has_loop() && clean.all_routable() {
            views.entry(s.vp).or_default().insert(clean);
        }
    }

    // Per view: leaf-pruning levels over the view's undirected link
    // graph — iteratively peel degree-≤1 nodes; the round a node is
    // peeled in is its level, so the dense core ends up on top. A link
    // whose endpoints share a level in a view counts as an "equal" vote;
    // otherwise the lower-level endpoint votes customer.
    let mut equal: HashMap<AsLink, usize> = HashMap::new();
    let mut directional: HashMap<(Asn, Asn), usize> = HashMap::new(); // (customer, provider)
    let mut seen: HashMap<AsLink, usize> = HashMap::new();

    let mut vps: Vec<Asn> = views.keys().copied().collect();
    vps.sort();
    for vp in vps {
        let view = &views[&vp];
        let mut view_links: HashSet<AsLink> = HashSet::new();
        for p in view {
            for (a, b) in p.links() {
                view_links.insert(AsLink::new(a, b));
            }
        }
        let levels = pruning_levels(&view_links);
        for link in view_links {
            *seen.entry(link).or_default() += 1;
            let (la, lb) = (levels[&link.a], levels[&link.b]);
            if la == lb {
                *equal.entry(link).or_default() += 1;
            } else if la < lb {
                *directional.entry((link.a, link.b)).or_default() += 1;
            } else {
                *directional.entry((link.b, link.a)).or_default() += 1;
            }
        }
    }

    let mut rels = RelationshipMap::new();
    let mut links: Vec<AsLink> = seen.keys().copied().collect();
    links.sort();
    for link in links {
        let views_seen = seen[&link];
        let eq = equal.get(&link).copied().unwrap_or(0);
        if eq as f64 >= cfg.equal_fraction * views_seen as f64 {
            rels.insert_p2p(link.a, link.b);
            continue;
        }
        let ab = directional.get(&(link.a, link.b)).copied().unwrap_or(0);
        let ba = directional.get(&(link.b, link.a)).copied().unwrap_or(0);
        if ab >= ba {
            rels.insert_c2p(link.a, link.b);
        } else {
            rels.insert_c2p(link.b, link.a);
        }
    }
    rels
}

/// Leaf-pruning levels: round in which each node is peeled (degree ≤ 1),
/// with the surviving core assigned the final round's level.
pub fn pruning_levels(links: &HashSet<AsLink>) -> HashMap<Asn, usize> {
    let mut adj: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for l in links {
        adj.entry(l.a).or_default().insert(l.b);
        adj.entry(l.b).or_default().insert(l.a);
    }
    let mut levels: HashMap<Asn, usize> = HashMap::new();
    let mut level = 0usize;
    while !adj.is_empty() {
        let leaves: Vec<Asn> = adj
            .iter()
            .filter(|(_, ns)| ns.len() <= 1)
            .map(|(&a, _)| a)
            .collect();
        if leaves.is_empty() {
            // Dense core: everything remaining shares the top level.
            for a in adj.keys() {
                levels.insert(*a, level);
            }
            break;
        }
        for a in &leaves {
            levels.insert(*a, level);
            if let Some(ns) = adj.remove(a) {
                for n in ns {
                    if let Some(set) = adj.get_mut(&n) {
                        set.remove(a);
                    }
                }
            }
        }
        level += 1;
    }
    levels
}

/// BFS levels of the union link graph from a start AS (exposed for tests;
/// SARK's original formulation layers each view this way).
pub fn bfs_levels(links: &HashSet<AsLink>, start: Asn) -> HashMap<Asn, usize> {
    let mut adj: HashMap<Asn, Vec<Asn>> = HashMap::new();
    for l in links {
        adj.entry(l.a).or_default().push(l.b);
        adj.entry(l.b).or_default().push(l.a);
    }
    let mut level: HashMap<Asn, usize> = HashMap::new();
    let mut q = VecDeque::new();
    level.insert(start, 0);
    q.push_back(start);
    while let Some(a) = q.pop_front() {
        let d = level[&a];
        if let Some(ns) = adj.get(&a) {
            for &b in ns {
                if let std::collections::hash_map::Entry::Vacant(e) = level.entry(b) {
                    e.insert(d + 1);
                    q.push_back(b);
                }
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(raw: &[&[u32]]) -> PathSet {
        raw.iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn hierarchy_inferred_from_two_views() {
        let rels = sark_infer(
            &ps(&[
                &[100, 10, 1, 20, 200],
                &[100, 10, 1, 30, 300],
                &[200, 20, 1, 10, 100],
                &[200, 20, 1, 30, 300],
            ]),
            &SarkConfig::default(),
        );
        assert!(rels.is_c2p(Asn(10), Asn(1)), "{rels:?}");
        assert!(rels.is_c2p(Asn(20), Asn(1)));
    }

    #[test]
    fn symmetric_links_become_p2p() {
        // 1 and 2 have identical downstream counts in both views.
        let rels = sark_infer(
            &ps(&[&[100, 1, 2, 200], &[200, 2, 1, 100]]),
            &SarkConfig::default(),
        );
        assert!(rels.is_p2p(Asn(1), Asn(2)), "{rels:?}");
    }

    #[test]
    fn bfs_levels_count_hops() {
        let links: HashSet<AsLink> = [
            AsLink::new(Asn(1), Asn(2)),
            AsLink::new(Asn(2), Asn(3)),
            AsLink::new(Asn(1), Asn(4)),
        ]
        .into_iter()
        .collect();
        let levels = bfs_levels(&links, Asn(1));
        assert_eq!(levels[&Asn(1)], 0);
        assert_eq!(levels[&Asn(2)], 1);
        assert_eq!(levels[&Asn(3)], 2);
        assert_eq!(levels[&Asn(4)], 1);
        assert!(!levels.contains_key(&Asn(9)));
    }

    #[test]
    fn every_observed_link_classified() {
        let input = ps(&[&[100, 10, 1, 20, 200], &[300, 30, 1, 10, 100]]);
        let rels = sark_infer(&input, &SarkConfig::default());
        let mut links = HashSet::new();
        for s in input.iter() {
            for (a, b) in s.path.links() {
                links.insert(AsLink::new(a, b));
            }
        }
        assert_eq!(rels.len(), links.len());
    }
}
