//! Naive degree heuristic — the floor every serious algorithm must beat.
//!
//! Classify each observed link by node degree alone: if the endpoint
//! degrees are within a tolerance factor, call it p2p; otherwise the
//! lower-degree AS is the customer. No path semantics at all, which is
//! exactly why it misclassifies content networks (high degree from
//! peering, yet customers of their transit providers).

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Degree heuristic parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegreeHeuristicConfig {
    /// Endpoint degrees within this factor of each other ⇒ p2p.
    pub p2p_band: f64,
}

impl Default for DegreeHeuristicConfig {
    fn default() -> Self {
        DegreeHeuristicConfig { p2p_band: 2.0 }
    }
}

/// Run the degree heuristic.
pub fn degree_heuristic(paths: &PathSet, cfg: &DegreeHeuristicConfig) -> RelationshipMap {
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for p in paths.paths() {
        let clean = p.compress_prepending();
        if clean.len() < 2 || clean.has_loop() || !clean.all_routable() {
            continue;
        }
        for (a, b) in clean.links() {
            neighbors.entry(a).or_default().insert(b);
            neighbors.entry(b).or_default().insert(a);
        }
    }
    let degree = |a: Asn| neighbors.get(&a).map(HashSet::len).unwrap_or(0) as f64;

    let mut links: Vec<AsLink> = neighbors
        .iter()
        .flat_map(|(&a, ns)| ns.iter().map(move |&b| AsLink::new(a, b)))
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    links.sort();

    let mut rels = RelationshipMap::new();
    for link in links {
        let (da, db) = (degree(link.a), degree(link.b));
        if da == 0.0 || db == 0.0 {
            continue;
        }
        let ratio = (da / db).max(db / da);
        if ratio <= cfg.p2p_band {
            rels.insert_p2p(link.a, link.b);
        } else if da < db {
            rels.insert_c2p(link.a, link.b);
        } else {
            rels.insert_c2p(link.b, link.a);
        }
    }
    rels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(raw: &[&[u32]]) -> PathSet {
        raw.iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn lower_degree_is_customer() {
        // 1 has degree 6; 10 has degree 2 — well outside the p2p band.
        let rels = degree_heuristic(
            &ps(&[&[100, 10, 1, 20], &[30, 1, 40], &[50, 1, 60]]),
            &DegreeHeuristicConfig::default(),
        );
        assert!(rels.is_c2p(Asn(10), Asn(1)), "{rels:?}");
    }

    #[test]
    fn similar_degrees_are_p2p() {
        let rels = degree_heuristic(&ps(&[&[100, 1, 2, 200]]), &DegreeHeuristicConfig::default());
        assert!(rels.is_p2p(Asn(1), Asn(2)));
    }

    #[test]
    fn band_parameter_controls_split() {
        let input = ps(&[&[100, 10, 1, 20], &[30, 1, 40]]);
        let strict = degree_heuristic(&input, &DegreeHeuristicConfig { p2p_band: 1.0 });
        // With band 1.0, only exactly-equal degrees peer.
        let (c2p, p2p, _) = strict.counts();
        assert!(c2p > 0);
        let loose = degree_heuristic(&input, &DegreeHeuristicConfig { p2p_band: 100.0 });
        let (_, p2p_loose, _) = loose.counts();
        assert!(p2p_loose >= p2p, "wider band can only add peering");
    }
}
