//! Gao's degree-based inference (IEEE/ACM ToN 2001).
//!
//! The first published AS-relationship algorithm, and the customary
//! baseline. For every path, the AS with the largest node degree is
//! assumed to be the path's *top provider*: links before it go uphill
//! (customer→provider), links after it downhill. Each traversal casts a
//! vote; vote totals classify links, with near-balanced votes indicating
//! siblings. A final phase marks links adjacent to the top provider as
//! peering when the two ASes have comparable degrees.
//!
//! Structural weaknesses the ASRank paper calls out (and our experiments
//! reproduce): node degree confuses big peering hubs with big transit
//! providers, a single path's top provider may actually sit beside a
//! peering link, and the sibling rule misfires on multihomed pairs.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Gao algorithm parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaoConfig {
    /// Vote threshold `L`: one-sided vote counts above `L` give c2p;
    /// two-sided counts at or below `L` give siblings (Gao's refined
    /// algorithm used small values; 1 is customary).
    pub l_threshold: usize,
    /// Degree-ratio band `R` for the peering phase: a link adjacent to a
    /// path's top provider is a peering candidate when the endpoint
    /// degrees are within a factor of `R`.
    pub degree_ratio: f64,
}

impl Default for GaoConfig {
    fn default() -> Self {
        GaoConfig {
            l_threshold: 1,
            degree_ratio: 60.0,
        }
    }
}

/// Run Gao's algorithm.
pub fn gao_infer(paths: &PathSet, cfg: &GaoConfig) -> RelationshipMap {
    let distinct: Vec<AsPath> = {
        let set: HashSet<AsPath> = paths
            .paths()
            .map(|p| p.compress_prepending())
            .filter(|p| p.len() >= 2 && !p.has_loop() && p.all_routable())
            .collect();
        let mut v: Vec<AsPath> = set.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };

    // Node degree over the observed link graph.
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for p in &distinct {
        for (a, b) in p.links() {
            neighbors.entry(a).or_default().insert(b);
            neighbors.entry(b).or_default().insert(a);
        }
    }
    let degree = |a: Asn| neighbors.get(&a).map(HashSet::len).unwrap_or(0);

    // Phase 1: vote uphill/downhill around each path's top provider.
    // votes[(u, v)] = number of paths suggesting v provides transit to u.
    let mut votes: HashMap<(Asn, Asn), usize> = HashMap::new();
    for p in &distinct {
        let hops = &p.0;
        let top = hops
            .iter()
            .enumerate()
            .max_by_key(|&(i, &a)| (degree(a), std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for j in 0..hops.len() - 1 {
            let (u, v) = (hops[j], hops[j + 1]);
            if j < top {
                *votes.entry((u, v)).or_default() += 1; // v provides for u
            } else {
                *votes.entry((v, u)).or_default() += 1; // u provides for v
            }
        }
    }

    // Phase 2: classify by votes.
    let mut rels = RelationshipMap::new();
    let mut links: Vec<AsLink> = neighbors
        .iter()
        .flat_map(|(&a, ns)| ns.iter().map(move |&b| AsLink::new(a, b)))
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    links.sort();
    for link in &links {
        let up = votes.get(&(link.a, link.b)).copied().unwrap_or(0); // b provides a
        let down = votes.get(&(link.b, link.a)).copied().unwrap_or(0); // a provides b
        let l = cfg.l_threshold;
        if up > l && down <= l {
            rels.insert_c2p(link.a, link.b);
        } else if down > l && up <= l {
            rels.insert_c2p(link.b, link.a);
        } else if up > 0 && down > 0 {
            rels.insert_s2s(link.a, link.b);
        } else if up > 0 {
            rels.insert_c2p(link.a, link.b);
        } else if down > 0 {
            rels.insert_c2p(link.b, link.a);
        }
    }

    // Phase 3: peering — links adjacent to a path's top provider whose
    // endpoint degrees fall within the R band are re-marked p2p when the
    // path evidence is weak or balanced (no one-sided transit signal).
    for p in &distinct {
        let hops = &p.0;
        let top = hops
            .iter()
            .enumerate()
            .max_by_key(|&(i, &a)| (degree(a), std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut candidates: Vec<(Asn, Asn)> = Vec::new();
        if top > 0 {
            candidates.push((hops[top - 1], hops[top]));
        }
        if top + 1 < hops.len() {
            candidates.push((hops[top], hops[top + 1]));
        }
        for (u, v) in candidates {
            let (du, dv) = (degree(u) as f64, degree(v) as f64);
            if du == 0.0 || dv == 0.0 {
                continue;
            }
            let ratio = (du / dv).max(dv / du);
            if ratio < cfg.degree_ratio {
                let up = votes.get(&(u, v)).copied().unwrap_or(0);
                let down = votes.get(&(v, u)).copied().unwrap_or(0);
                let weak_both = up <= cfg.l_threshold && down <= cfg.l_threshold;
                let balanced = up > 0
                    && down > 0
                    && (up as f64 / down as f64) < 2.0
                    && (down as f64 / up as f64) < 2.0;
                if weak_both || balanced {
                    rels.insert_p2p(u, v);
                }
            }
        }
    }

    rels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(raw: &[&[u32]]) -> PathSet {
        raw.iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn simple_hierarchy_inferred() {
        // 1 is the high-degree hub; chains hang off it.
        let rels = gao_infer(
            &ps(&[
                &[100, 10, 1, 20, 200],
                &[100, 10, 1, 30, 300],
                &[200, 20, 1, 30, 300],
                &[200, 20, 1, 10, 100],
            ]),
            &GaoConfig::default(),
        );
        assert!(rels.is_c2p(Asn(10), Asn(1)), "{rels:?}");
        assert!(rels.is_c2p(Asn(20), Asn(1)));
        assert!(rels.is_c2p(Asn(100), Asn(10)));
        assert!(rels.is_c2p(Asn(200), Asn(20)));
    }

    #[test]
    fn comparable_top_degrees_become_p2p() {
        // 1 and 2 have similar degree and meet at every path's peak.
        let rels = gao_infer(
            &ps(&[
                &[100, 10, 1, 2, 20, 200],
                &[200, 20, 2, 1, 10, 100],
                &[100, 11, 1, 2, 21, 200],
                &[200, 21, 2, 1, 11, 100],
            ]),
            &GaoConfig::default(),
        );
        assert!(rels.is_p2p(Asn(1), Asn(2)), "{rels:?}");
    }

    #[test]
    fn balanced_votes_give_siblings() {
        // The 5–6 link is seen uphill in both directions: toward top
        // provider 7 in two paths (votes 5→6) and toward top provider 5
        // in two others (votes 6→5). Balanced votes ⇒ sibling. A tight
        // degree band keeps the peering phase out of the way.
        let cfg = GaoConfig {
            degree_ratio: 1.01,
            ..Default::default()
        };
        let rels = gao_infer(
            &ps(&[
                // 7 is the global degree champion.
                &[80, 7, 81],
                &[82, 7, 83],
                &[84, 7, 85],
                &[86, 7, 87],
                // Uphill 5 → 6 → 7.
                &[90, 5, 6, 7],
                &[91, 5, 6, 7],
                // Uphill 6 → 5 (5 tops these paths).
                &[70, 6, 5, 96],
                &[71, 6, 5, 97],
            ]),
            &cfg,
        );
        assert_eq!(
            rels.get(Asn(5), Asn(6)).map(|r| r.kind()),
            Some(RelationshipKind::S2s),
            "{rels:?}"
        );
    }

    #[test]
    fn deterministic() {
        let input = ps(&[&[100, 10, 1, 20, 200], &[200, 20, 1, 10, 100]]);
        let a = gao_infer(&input, &GaoConfig::default());
        let b = gao_infer(&input, &GaoConfig::default());
        let mut la: Vec<_> = a.iter().collect();
        let mut lb: Vec<_> = b.iter().collect();
        la.sort_by_key(|(l, _)| (l.a, l.b));
        lb.sort_by_key(|(l, _)| (l.a, l.b));
        assert_eq!(la, lb);
    }

    #[test]
    fn empty_input_gives_empty_map() {
        assert!(gao_infer(&PathSet::new(), &GaoConfig::default()).is_empty());
    }
}
