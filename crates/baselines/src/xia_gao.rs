//! Xia & Gao's partially-validated inference (2004).
//!
//! Xia & Gao observed that a *small set of known relationships* (they
//! used routing-registry data) anchors the rest: in a valley-free path,
//! once any link's relationship is known, it constrains which side of the
//! peak every other link sits on. The algorithm seeds from the known set,
//! locates each path's peak consistently with the seed, and infers the
//! remaining links by voting; unseeded, it degenerates to Gao-style
//! top-by-degree peak selection.

use crate::gao::{gao_infer, GaoConfig};
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Xia-Gao parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XiaGaoConfig {
    /// Vote majority required to classify a link from path evidence.
    pub majority: f64,
    /// Fallback Gao parameters for links the seeded pass cannot reach.
    pub fallback: GaoConfig,
}

impl Default for XiaGaoConfig {
    fn default() -> Self {
        XiaGaoConfig {
            majority: 0.6,
            fallback: GaoConfig::default(),
        }
    }
}

/// Run Xia-Gao with a seed of known relationships.
pub fn xia_gao_infer(
    paths: &PathSet,
    seed: &RelationshipMap,
    cfg: &XiaGaoConfig,
) -> RelationshipMap {
    let distinct: Vec<AsPath> = {
        let set: HashSet<AsPath> = paths
            .paths()
            .map(|p| p.compress_prepending())
            .filter(|p| p.len() >= 2 && !p.has_loop() && p.all_routable())
            .collect();
        let mut v: Vec<AsPath> = set.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };

    // Vote for each oriented pair: (customer, provider) → count.
    let mut c2p_votes: HashMap<(Asn, Asn), usize> = HashMap::new();
    let mut p2p_votes: HashMap<AsLink, usize> = HashMap::new();

    for p in &distinct {
        let hops = &p.0;
        // Locate the peak interval using seeded links: the last seeded
        // uphill link starts the peak; the first seeded downhill link
        // ends it.
        let mut peak_start: Option<usize> = None; // index of last uphill link + 1
        let mut peak_end: Option<usize> = None; // index of first downhill link
        for j in 0..hops.len() - 1 {
            match seed.orientation(hops[j], hops[j + 1]) {
                // hops[j+1] is hops[j]'s provider → still climbing at j.
                Some(Orientation::Provider) => peak_start = Some(j + 1),
                // hops[j+1] is hops[j]'s customer → descending from j.
                Some(Orientation::Customer) if peak_end.is_none() => {
                    peak_end = Some(j);
                }
                Some(Orientation::Peer) => {
                    peak_start = peak_start.or(Some(j));
                    if peak_end.is_none() {
                        peak_end = Some(j + 1);
                    }
                }
                _ => {}
            }
        }
        let (Some(start), Some(end)) = (peak_start, peak_end) else {
            continue; // seed gives no anchor for this path
        };
        if start > end {
            continue; // seed evidence is inconsistent (valley); skip
        }
        // Links strictly before the peak are uphill; strictly after,
        // downhill; links inside [start, end) are left alone (could be
        // the peering crossing).
        for j in 0..hops.len() - 1 {
            if j < start {
                *c2p_votes.entry((hops[j], hops[j + 1])).or_default() += 1;
            } else if j >= end {
                *c2p_votes.entry((hops[j + 1], hops[j])).or_default() += 1;
            } else if j == start && end == start + 1 {
                // Exactly one link inside the peak: the peering crossing.
                *p2p_votes
                    .entry(AsLink::new(hops[j], hops[j + 1]))
                    .or_default() += 1;
            }
        }
    }

    // Start from the fallback inference, then overwrite with seeded-pass
    // majorities, then stamp the seed itself (ground truth wins).
    let mut rels = gao_infer(paths, &cfg.fallback);

    let mut all_links: HashSet<AsLink> = HashSet::new();
    for &(c, pvd) in c2p_votes.keys() {
        all_links.insert(AsLink::new(c, pvd));
    }
    all_links.extend(p2p_votes.keys().copied());
    let mut ordered: Vec<AsLink> = all_links.into_iter().collect();
    ordered.sort();
    for link in ordered {
        let up = c2p_votes.get(&(link.a, link.b)).copied().unwrap_or(0);
        let down = c2p_votes.get(&(link.b, link.a)).copied().unwrap_or(0);
        let peer = p2p_votes.get(&link).copied().unwrap_or(0);
        let total = up + down + peer;
        if total == 0 {
            continue;
        }
        let share = |n: usize| n as f64 / total as f64;
        if share(up) >= cfg.majority {
            rels.insert_c2p(link.a, link.b);
        } else if share(down) >= cfg.majority {
            rels.insert_c2p(link.b, link.a);
        } else if share(peer) >= cfg.majority {
            rels.insert_p2p(link.a, link.b);
        }
    }

    for (link, rel) in seed.iter() {
        match rel {
            LinkRel::AC2pB => rels.insert_c2p(link.a, link.b),
            LinkRel::AP2cB => rels.insert_c2p(link.b, link.a),
            LinkRel::P2p => rels.insert_p2p(link.a, link.b),
            LinkRel::S2s => rels.insert_s2s(link.a, link.b),
        }
    }

    rels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(raw: &[&[u32]]) -> PathSet {
        raw.iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn seed_anchors_inference() {
        // Path 100-10-1-2-20-200 with seeded p2p(1,2): everything before
        // is uphill, everything after downhill.
        let mut seed = RelationshipMap::new();
        seed.insert_p2p(Asn(1), Asn(2));
        let rels = xia_gao_infer(
            &ps(&[&[100, 10, 1, 2, 20, 200], &[100, 11, 1, 2, 21, 201]]),
            &seed,
            &XiaGaoConfig::default(),
        );
        assert!(rels.is_p2p(Asn(1), Asn(2)));
        assert!(rels.is_c2p(Asn(10), Asn(1)), "{rels:?}");
        assert!(rels.is_c2p(Asn(100), Asn(10)));
        assert!(rels.is_c2p(Asn(20), Asn(2)));
        assert!(rels.is_c2p(Asn(200), Asn(20)));
    }

    #[test]
    fn seeded_c2p_anchors_peak() {
        // Seed 10 c2p 1 in path 100-10-1-20-200: peak must be at/after 1,
        // so 20, 200 descend.
        let mut seed = RelationshipMap::new();
        seed.insert_c2p(Asn(10), Asn(1));
        seed.insert_c2p(Asn(20), Asn(1));
        let rels = xia_gao_infer(
            &ps(&[&[100, 10, 1, 20, 200]]),
            &seed,
            &XiaGaoConfig::default(),
        );
        assert!(rels.is_c2p(Asn(100), Asn(10)));
        assert!(rels.is_c2p(Asn(200), Asn(20)));
    }

    #[test]
    fn seed_always_wins() {
        let mut seed = RelationshipMap::new();
        seed.insert_p2p(Asn(10), Asn(1));
        let rels = xia_gao_infer(
            &ps(&[&[100, 10, 1, 20, 200]]),
            &seed,
            &XiaGaoConfig::default(),
        );
        assert!(rels.is_p2p(Asn(10), Asn(1)));
    }

    #[test]
    fn unseeded_degenerates_to_gao() {
        let input = ps(&[&[100, 10, 1, 20, 200], &[200, 20, 1, 10, 100]]);
        let xg = xia_gao_infer(&input, &RelationshipMap::new(), &XiaGaoConfig::default());
        let g = gao_infer(&input, &GaoConfig::default());
        let mut a: Vec<_> = xg.iter().collect();
        let mut b: Vec<_> = g.iter().collect();
        a.sort_by_key(|(l, _)| (l.a, l.b));
        b.sort_by_key(|(l, _)| (l.a, l.b));
        assert_eq!(a, b);
    }
}
