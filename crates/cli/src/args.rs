//! Tiny `--flag value` argument parser (no external dependencies).

use std::collections::{HashMap, HashSet};

/// Boolean switches accepted by every pipeline-running subcommand (they
/// take no value, unlike ordinary `--name value` pairs).
pub const CACHE_SWITCHES: &[&str] = &["no-cache"];

/// Parsed flags: every argument must be a `--name value` pair, except
/// for declared boolean switches, which stand alone.
pub struct Flags {
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Flags {
    /// Parse; prints an error and returns `None` on malformed input.
    pub fn parse(args: &[String]) -> Option<Flags> {
        Self::parse_with_switches(args, &[])
    }

    /// Parse, treating each name in `switches` as a valueless boolean
    /// flag; prints an error and returns `None` on malformed input.
    pub fn parse_with_switches(args: &[String], switches: &[&str]) -> Option<Flags> {
        let mut values = HashMap::new();
        let mut seen = HashSet::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                eprintln!("expected --flag, got {a:?}");
                return None;
            };
            if switches.contains(&name) {
                seen.insert(name.to_string());
                continue;
            }
            let Some(v) = it.next() else {
                eprintln!("flag --{name} is missing a value");
                return None;
            };
            values.insert(name.to_string(), v.clone());
        }
        Some(Flags {
            values,
            switches: seen,
        })
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Option<&str> {
        let v = self.values.get(name).map(String::as_str);
        if v.is_none() {
            eprintln!("missing required flag --{name}");
        }
        v
    }

    /// Optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Optional parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Option<T> {
        match self.values.get(name) {
            None => Some(default),
            Some(v) => match v.parse() {
                Ok(x) => Some(x),
                Err(_) => {
                    eprintln!("invalid value for --{name}: {v:?}");
                    None
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&sv(&["--a", "1", "--b", "x"])).unwrap();
        assert_eq!(f.required("a"), Some("1"));
        assert_eq!(f.get("b"), Some("x"));
        assert_eq!(f.get("c"), None);
        assert_eq!(f.get_or("a", 0u32), Some(1));
        assert_eq!(f.get_or("missing", 7u32), Some(7));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Flags::parse(&sv(&["positional"])).is_none());
        assert!(Flags::parse(&sv(&["--dangling"])).is_none());
        let f = Flags::parse(&sv(&["--n", "abc"])).unwrap();
        assert_eq!(f.get_or::<u32>("n", 0), None);
    }

    #[test]
    fn switches_take_no_value() {
        let f =
            Flags::parse_with_switches(&sv(&["--no-cache", "--a", "1"]), &["no-cache"]).unwrap();
        assert!(f.switch("no-cache"));
        assert!(!f.switch("other"));
        assert_eq!(f.get("a"), Some("1"));
        // Without the declaration, the same input is a malformed pair.
        assert!(Flags::parse(&sv(&["--no-cache"])).is_none());
        // A switch at the end of the line needs no value either.
        let f = Flags::parse_with_switches(&sv(&["--a", "1", "--no-cache"]), &["no-cache"]).unwrap();
        assert!(f.switch("no-cache"));
    }
}
