//! Shared input loading for the engine-driven subcommands.
//!
//! Every pipeline-running command (`infer`, `rank`, `audit --stage`,
//! `stability`) used to parse its own flags into a private re-run of the
//! monolithic pipeline. They now share this loader plus one
//! [`asrank_core::engine::Snapshot`] entry point: flags become a
//! [`LoadedInputs`] (paths + config + optional prefix table), the
//! snapshot memoizes every stage, and commands pull exactly the
//! artifacts they print.
//!
//! Caching: [`apply_cache_flags`] wires `--cache-dir`/`--no-cache` into
//! the process-wide default cache directory
//! ([`asrank_core::set_process_cache_dir`]), which every snapshot —
//! including those built deep inside `pipeline::infer` and
//! `stability::jackknife` — picks up automatically. [`load_rib`] keys a
//! decoded-`PathSet` cache entry on the checksum of the raw file bytes,
//! so a warm run skips MRT decoding entirely.

use crate::args::Flags;
use as_topology_gen::load_bundle;
use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::{read_as_rel, CacheDir, InferenceView};
use asrank_serve::{MappedBytes, SourceSpec, INFERENCE_STAGE};
use asrank_types::{
    checksum64, Asn, EngineError, Ipv4Prefix, LinkRel, Parallelism, PathSet, RelationshipMap,
};
use mrt_codec::read_rib_dump_parallel;
use std::collections::HashMap;
use std::path::PathBuf;

/// Stage name under which decoded RIB path sets are cached (keyed by the
/// checksum of the raw MRT bytes, not by any pipeline fingerprint).
const RIB_INGEST_STAGE: &str = "rib_ingest";

/// Everything a pipeline command needs to build a [`Snapshot`].
pub struct LoadedInputs {
    /// Observed paths decoded from the `--rib` MRT file.
    pub paths: PathSet,
    /// Inference configuration (IXP list from `--topo`, thread budget
    /// from `--threads`).
    pub cfg: InferenceConfig,
    /// Per-AS originated prefixes from the `--topo` bundle, when given —
    /// the cone stages weight cones by these.
    pub prefixes: Option<HashMap<Asn, Vec<Ipv4Prefix>>>,
}

impl LoadedInputs {
    /// Build the engine snapshot over these inputs. The snapshot borrows
    /// `self.paths`, so keep the `LoadedInputs` alive while querying.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let snap = Snapshot::new(&self.paths, self.cfg.clone());
        match &self.prefixes {
            Some(table) => snap.with_prefixes(table.clone()),
            None => snap,
        }
    }
}

/// Wire `--cache-dir DIR` / `--no-cache` into the process-wide default
/// cache directory consulted by every snapshot. `--no-cache` wins when
/// both are given; with neither flag, caching stays off.
pub fn apply_cache_flags(flags: &Flags) {
    let dir = if flags.switch("no-cache") {
        None
    } else {
        flags.get("cache-dir").map(PathBuf::from)
    };
    asrank_core::set_process_cache_dir(dir);
}

/// Decode one MRT RIB file into a path set.
///
/// The file is read whole and the records decoded on the `threads`
/// fan-out ([`read_rib_dump_parallel`] — byte-identical to the
/// sequential reader). When a cache directory is active, the decoded
/// path set is stored keyed by the checksum of the raw bytes; a warm run
/// reads the file once and skips MRT decoding.
pub fn load_rib(path: &str, threads: Parallelism) -> Result<PathSet, EngineError> {
    let bytes =
        std::fs::read(path).map_err(|e| EngineError::ingest(path, e.to_string()))?;
    let cache = asrank_core::process_cache_dir().map(CacheDir::new);
    let key = cache.as_ref().map(|_| checksum64(&bytes));
    if let (Some(cache), Some(key)) = (&cache, key) {
        if let Some(paths) = cache.load_paths(RIB_INGEST_STAGE, key) {
            return Ok(paths);
        }
    }
    let paths = read_rib_dump_parallel(&bytes, threads)
        .map_err(|e| EngineError::ingest(path, e.to_string()))?;
    if let (Some(cache), Some(key)) = (&cache, key) {
        cache.store_paths(RIB_INGEST_STAGE, key, &paths);
    }
    Ok(paths)
}

/// Parse the shared `--rib` / `--topo` / `--threads` / cache flags into
/// [`LoadedInputs`]. On error, prints the failure and returns the
/// process exit code (2 for flag mistakes, 1 for IO failures).
pub fn load_inputs(flags: &Flags) -> Result<LoadedInputs, i32> {
    let Some(rib) = flags.required("rib") else {
        return Err(2);
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return Err(2);
    };
    apply_cache_flags(flags);
    let paths = match load_rib(rib, threads) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return Err(1);
        }
    };

    let (mut cfg, prefixes) = match flags.get("topo") {
        Some(dir) => match load_bundle(&PathBuf::from(dir)) {
            Ok(t) => {
                let ixps: Vec<Asn> = t.ixps.iter().map(|i| i.route_server).collect();
                (
                    InferenceConfig::with_ixps(ixps),
                    Some(t.ground_truth.prefixes),
                )
            }
            Err(e) => {
                eprintln!("{}", EngineError::ingest(dir, e.to_string()));
                return Err(1);
            }
        },
        None => (InferenceConfig::default(), None),
    };
    cfg.parallelism = threads;

    Ok(LoadedInputs {
        paths,
        cfg,
        prefixes,
    })
}

/// Build the serve/query frame spec from `--rib` / `--cache-dir` /
/// `--topo`: the RIB anchors the cache keys, the topo bundle supplies
/// the IXP config + prefix table of the warm run (keys depend on both).
pub fn load_serve_spec(flags: &Flags) -> Result<SourceSpec, i32> {
    let Some(rib) = flags.required("rib") else {
        return Err(2);
    };
    let Some(cache_dir) = flags.required("cache-dir") else {
        return Err(2);
    };
    let (cfg, prefixes) = match flags.get("topo") {
        Some(dir) => match load_bundle(&PathBuf::from(dir)) {
            Ok(t) => {
                let ixps: Vec<Asn> = t.ixps.iter().map(|i| i.route_server).collect();
                (
                    InferenceConfig::with_ixps(ixps),
                    Some(t.ground_truth.prefixes),
                )
            }
            Err(e) => {
                eprintln!("{}", EngineError::ingest(dir, e.to_string()));
                return Err(1);
            }
        },
        None => (InferenceConfig::default(), None),
    };
    Ok(SourceSpec {
        rib: PathBuf::from(rib),
        cache_root: PathBuf::from(cache_dir),
        cfg,
        prefixes,
    })
}

/// Warm-cache fast path for [`rels_from`]: when the inference frame for
/// this RIB (under the default config) is already persisted, rebuild the
/// relationship map straight from the borrowed frame view — the RIB is
/// read once for its checksum, but no `PathSet` is materialized, no
/// pipeline stage runs, and no owned artifact is decoded.
fn cached_rels(path: &str) -> Option<RelationshipMap> {
    let cache_root = asrank_core::process_cache_dir()?;
    let spec = SourceSpec {
        rib: PathBuf::from(path),
        cache_root,
        cfg: InferenceConfig::default(),
        prefixes: None,
    };
    let (_, content_fp) = spec.content_fp().ok()?;
    let frame_path = spec.locate(INFERENCE_STAGE, content_fp).ok()?;
    let frame = MappedBytes::open(&frame_path).ok()?;
    let (view, _, _) = InferenceView::open(&frame).ok()?;
    let mut rels = RelationshipMap::new();
    for (link, rel) in view.rels.iter() {
        match rel {
            LinkRel::AC2pB => rels.insert_c2p(link.a, link.b),
            LinkRel::AP2cB => rels.insert_c2p(link.b, link.a),
            LinkRel::P2p => rels.insert_p2p(link.a, link.b),
            LinkRel::S2s => rels.insert_s2s(link.a, link.b),
        }
    }
    Some(rels)
}

/// Load a relationship map from either an as-rel text file or — when the
/// path ends in `.mrt` — an MRT RIB, in which case the relationships are
/// inferred through the staged engine. This lets `validate` and `diff`
/// consume raw RIBs directly without a separate `infer --out` round trip.
/// With a warm cache the inference frame is read through a borrowed view
/// ([`cached_rels`]) and the decode/re-infer path is skipped entirely.
pub fn rels_from(path: &str, threads: Parallelism) -> Option<RelationshipMap> {
    if path.ends_with(".mrt") {
        if let Some(rels) = cached_rels(path) {
            return Some(rels);
        }
        let paths = match load_rib(path, threads) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return None;
            }
        };
        let mut cfg = InferenceConfig::default();
        cfg.parallelism = threads;
        let mut snap = Snapshot::new(&paths, cfg);
        return match snap.inference() {
            Ok(inf) => Some(inf.relationships.clone()),
            Err(e) => {
                eprintln!("inference over {path} failed: {e}");
                None
            }
        };
    }
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}", EngineError::ingest(path, e.to_string()));
            return None;
        }
    };
    match read_as_rel(std::io::BufReader::new(file)) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("{}", EngineError::ingest(path, e.to_string()));
            None
        }
    }
}
