//! Shared input loading for the engine-driven subcommands.
//!
//! Every pipeline-running command (`infer`, `rank`, `audit --stage`,
//! `stability`) used to parse its own flags into a private re-run of the
//! monolithic pipeline. They now share this loader plus one
//! [`asrank_core::engine::Snapshot`] entry point: flags become a
//! [`LoadedInputs`] (paths + config + optional prefix table), the
//! snapshot memoizes every stage, and commands pull exactly the
//! artifacts they print.

use crate::args::Flags;
use as_topology_gen::load_bundle;
use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::read_as_rel;
use asrank_types::{Asn, Ipv4Prefix, Parallelism, PathSet, RelationshipMap};
use mrt_codec::read_rib_dump;
use std::collections::HashMap;
use std::path::PathBuf;

/// Everything a pipeline command needs to build a [`Snapshot`].
pub struct LoadedInputs {
    /// Observed paths decoded from the `--rib` MRT file.
    pub paths: PathSet,
    /// Inference configuration (IXP list from `--topo`, thread budget
    /// from `--threads`).
    pub cfg: InferenceConfig,
    /// Per-AS originated prefixes from the `--topo` bundle, when given —
    /// the cone stages weight cones by these.
    pub prefixes: Option<HashMap<Asn, Vec<Ipv4Prefix>>>,
}

impl LoadedInputs {
    /// Build the engine snapshot over these inputs. The snapshot borrows
    /// `self.paths`, so keep the `LoadedInputs` alive while querying.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let snap = Snapshot::new(&self.paths, self.cfg.clone());
        match &self.prefixes {
            Some(table) => snap.with_prefixes(table.clone()),
            None => snap,
        }
    }
}

/// Decode one MRT RIB file into a path set. Prints the failure and
/// returns `None` on error.
pub fn load_rib(path: &str) -> Option<PathSet> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return None;
        }
    };
    match read_rib_dump(std::io::BufReader::new(file)) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("failed reading MRT {path}: {e}");
            None
        }
    }
}

/// Parse the shared `--rib` / `--topo` / `--threads` flags into
/// [`LoadedInputs`]. On error, prints the failure and returns the
/// process exit code (2 for flag mistakes, 1 for IO failures).
pub fn load_inputs(flags: &Flags) -> Result<LoadedInputs, i32> {
    let Some(rib) = flags.required("rib") else {
        return Err(2);
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return Err(2);
    };
    let Some(paths) = load_rib(rib) else {
        return Err(1);
    };

    let (mut cfg, prefixes) = match flags.get("topo") {
        Some(dir) => match load_bundle(&PathBuf::from(dir)) {
            Ok(t) => {
                let ixps: Vec<Asn> = t.ixps.iter().map(|i| i.route_server).collect();
                (
                    InferenceConfig::with_ixps(ixps),
                    Some(t.ground_truth.prefixes),
                )
            }
            Err(e) => {
                eprintln!("failed to load bundle {dir}: {e}");
                return Err(1);
            }
        },
        None => (InferenceConfig::default(), None),
    };
    cfg.parallelism = threads;

    Ok(LoadedInputs {
        paths,
        cfg,
        prefixes,
    })
}

/// Load a relationship map from either an as-rel text file or — when the
/// path ends in `.mrt` — an MRT RIB, in which case the relationships are
/// inferred through the staged engine. This lets `validate` and `diff`
/// consume raw RIBs directly without a separate `infer --out` round trip.
pub fn rels_from(path: &str, threads: Parallelism) -> Option<RelationshipMap> {
    if path.ends_with(".mrt") {
        let paths = load_rib(path)?;
        let mut cfg = InferenceConfig::default();
        cfg.parallelism = threads;
        let mut snap = Snapshot::new(&paths, cfg);
        return match snap.inference() {
            Ok(inf) => Some(inf.relationships.clone()),
            Err(e) => {
                eprintln!("inference over {path} failed: {e}");
                None
            }
        };
    }
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return None;
        }
    };
    match read_as_rel(std::io::BufReader::new(file)) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("failed parsing as-rel {path}: {e}");
            None
        }
    }
}
