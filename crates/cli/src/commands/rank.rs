//! `asrank rank` — infer from an MRT file and print the AS ranking by
//! customer cone (the paper's public artifact).

use crate::args::Flags;
use as_topology_gen::load_bundle;
use asrank_core::cone::ConeSets;
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::{rank_ases, sanitize};
use asrank_types::{Asn, Parallelism};
use mrt_codec::read_rib_dump;
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(rib) = flags.required("rib") else {
        return 2;
    };
    let Some(top) = flags.get_or("top", 10usize) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };

    let file = match std::fs::File::open(rib) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {rib}: {e}");
            return 1;
        }
    };
    let paths = match read_rib_dump(std::io::BufReader::new(file)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("failed reading MRT: {e}");
            return 1;
        }
    };

    let (cfg, prefixes) = match flags.get("topo") {
        Some(dir) => match load_bundle(&PathBuf::from(dir)) {
            Ok(t) => {
                let ixps: Vec<Asn> = t.ixps.iter().map(|i| i.route_server).collect();
                (
                    InferenceConfig::with_ixps(ixps),
                    Some(t.ground_truth.prefixes),
                )
            }
            Err(e) => {
                eprintln!("failed to load bundle: {e}");
                return 1;
            }
        },
        None => (InferenceConfig::default(), None),
    };

    let mut cfg = cfg;
    cfg.parallelism = threads;
    let inference = infer(&paths, &cfg);
    let clean = sanitize(&paths, &cfg.sanitize);
    let cones = ConeSets::compute_with(&clean, &inference.relationships, prefixes.as_ref(), threads);
    let ranked = rank_ases(&cones.recursive, &inference.degrees);

    println!(
        "{:>5}  {:>10}  {:>10}  {:>10}  {:>14}  {:>8}",
        "rank", "asn", "cone ASes", "prefixes", "addresses", "degree"
    );
    for row in ranked.iter().take(top) {
        println!(
            "{:>5}  {:>10}  {:>10}  {:>10}  {:>14}  {:>8}",
            row.rank,
            row.asn.to_string(),
            row.cone.ases,
            row.cone.prefixes,
            row.cone.addresses,
            row.transit_degree
        );
    }
    0
}
