//! `asrank rank` — infer from an MRT file and print the AS ranking by
//! customer cone (the paper's public artifact).
//!
//! Shares the engine snapshot with `infer`: the sanitize/arena/degree
//! artifacts feeding the inference are materialized once and the
//! recursive cone (the only flavor the ranking prints) is pulled from
//! the store — the command no longer re-sanitizes the paths or computes
//! the two observed cone flavors it never displayed.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::load_inputs;
use asrank_core::rank_ases;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    let Some(top) = flags.get_or("top", 10usize) else {
        return 2;
    };
    let inputs = match load_inputs(&flags) {
        Ok(i) => i,
        Err(code) => return code,
    };

    let mut snapshot = inputs.snapshot();
    let (inference, cone) = match snapshot.inference().and_then(|inf| {
        let cone = snapshot.recursive_cone()?;
        Ok((inf, cone))
    }) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("ranking failed: {e}");
            return 1;
        }
    };
    let ranked = rank_ases(&cone, &inference.degrees);

    println!(
        "{:>5}  {:>10}  {:>10}  {:>10}  {:>14}  {:>8}",
        "rank", "asn", "cone ASes", "prefixes", "addresses", "degree"
    );
    for row in ranked.iter().take(top) {
        println!(
            "{:>5}  {:>10}  {:>10}  {:>10}  {:>14}  {:>8}",
            row.rank,
            row.asn.to_string(),
            row.cone.ases,
            row.cone.prefixes,
            row.cone.addresses,
            row.transit_degree
        );
    }
    0
}
