//! `asrank audit` — semantic invariant checks over an inferred as-rel file.
//!
//! Grades a relationship assignment against the structural invariants the
//! inference algorithm promises (CSR well-formedness, clique p2p
//! completeness, cycle containment, cone containment and agreement) and —
//! when a RIB is supplied — valley-free consistency of every sanitized
//! path. Exit 0 when no error-severity findings, 1 otherwise.
//!
//! With `--stage NAME` the command instead materializes one memoized
//! engine artifact from `--rib` (plus its upstream dependencies, served
//! from the snapshot store) and audits only that artifact — useful for
//! bisecting which pipeline stage first breaks an invariant without
//! paying for the full inference.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::{apply_cache_flags, load_inputs, load_rib};
use asrank_core::audit::{audit, audit_stage, AuditConfig};
use asrank_core::read_as_rel;
use asrank_core::sanitize::{sanitize_with, SanitizeConfig};
use asrank_types::{Asn, EngineError, Parallelism};

/// Audit one engine stage artifact: shares the `--rib`/`--topo`/`--threads`
/// loader with `infer` and `rank`, so a warm snapshot is graded without
/// re-running anything upstream of the named stage.
fn run_stage(stage: &str, flags: &Flags) -> i32 {
    let inputs = match load_inputs(flags) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let mut snapshot = inputs.snapshot();
    let cfg = AuditConfig {
        parallelism: inputs.cfg.parallelism,
        ..AuditConfig::default()
    };
    match audit_stage(&mut snapshot, stage, &cfg) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                0
            } else {
                1
            }
        }
        Err(e @ EngineError::UnknownStage(_)) => {
            eprintln!(
                "{e}; valid stages: {}",
                asrank_core::engine::Snapshot::stage_names().join(", ")
            );
            2
        }
        Err(e) => {
            eprintln!("stage audit failed: {e}");
            1
        }
    }
}

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    if let Some(stage) = flags.get("stage") {
        return run_stage(stage, &flags);
    }
    let Some(rels_path) = flags.required("rels") else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };
    apply_cache_flags(&flags);

    // Optional clique: comma-separated ASNs expected to be mutually p2p.
    // Parsed before any file IO so flag mistakes always exit 2.
    let clique: Option<Vec<Asn>> = match flags.get("clique") {
        Some(list) => {
            let mut members = Vec::new();
            for tok in list.split(',').filter(|t| !t.trim().is_empty()) {
                match tok.trim().parse::<u32>() {
                    Ok(n) => members.push(Asn(n)),
                    Err(_) => {
                        eprintln!("--clique expects comma-separated ASNs, got {tok:?}");
                        return 2;
                    }
                }
            }
            Some(members)
        }
        None => None,
    };

    let file = match std::fs::File::open(rels_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {rels_path}: {e}");
            return 1;
        }
    };
    let rels = match read_as_rel(std::io::BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed reading as-rel {rels_path}: {e}");
            return 1;
        }
    };

    // Optional RIB: enables the valley-free checks over sanitized paths.
    let sanitized = match flags.get("rib") {
        Some(rib) => match load_rib(rib, threads) {
            Ok(paths) => Some(sanitize_with(&paths, &SanitizeConfig::default(), threads)),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        },
        None => None,
    };

    let cfg = AuditConfig {
        parallelism: threads,
        ..AuditConfig::default()
    };
    let report = audit(&rels, sanitized.as_ref(), clique.as_deref(), &cfg);
    print!("{}", report.render());
    if report.passed() {
        0
    } else {
        1
    }
}
