//! `asrank simulate` — run the BGP simulator over a bundle and export a
//! TABLE_DUMP_V2 RIB file.

use crate::args::Flags;
use as_topology_gen::load_bundle;
use bgp_sim::{simulate, AnomalyConfig, SimConfig, VpSelection};
use mrt_codec::write_rib_dump;
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(topo_dir) = flags.required("topo") else {
        return 2;
    };
    let Some(out) = flags.required("out") else {
        return 2;
    };
    let Some(vps) = flags.get_or("vps", 30usize) else {
        return 2;
    };
    let Some(full_feed) = flags.get_or("full-feed", 116.0 / 315.0) else {
        return 2;
    };
    let Some(seed) = flags.get_or("seed", 42u64) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", 0usize) else {
        return 2;
    };
    let dest_sample = match flags.get("dest-sample") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("invalid --dest-sample {v:?}");
                return 2;
            }
        },
    };

    let topo = match load_bundle(&PathBuf::from(topo_dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load bundle: {e}");
            return 1;
        }
    };
    let anomalies = match flags.get("anomalies").unwrap_or("none") {
        "none" => AnomalyConfig::none(),
        "realistic" => AnomalyConfig::realistic(topo.ground_truth.clique()),
        other => {
            eprintln!("unknown anomaly preset {other:?} (none|realistic)");
            return 2;
        }
    };

    let sim = simulate(
        &topo,
        &SimConfig {
            vp_selection: VpSelection::Count(vps),
            full_feed_fraction: full_feed,
            anomalies,
            destination_sample: dest_sample,
            rib_cap_per_vp: None,
            threads,
            seed,
        },
    );

    let file = match std::fs::File::create(out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return 1;
        }
    };
    match write_rib_dump(&sim.paths, std::io::BufWriter::new(file), seed as u32) {
        Ok(records) => {
            println!(
                "wrote {out}: {records} MRT records, {} RIB entries from {} VPs \
                 ({} destinations; {} unreachable pairs)",
                sim.paths.len(),
                sim.vps.len(),
                sim.stats.destinations,
                sim.stats.unreachable_pairs,
            );
            0
        }
        Err(e) => {
            eprintln!("failed writing MRT: {e}");
            1
        }
    }
}
