//! `asrank depeer` — simulate a depeering/link-failure event over a
//! topology bundle and write the resulting BGP4MP update stream.

use crate::args::Flags;
use as_topology_gen::load_bundle;
use asrank_types::Asn;
use bgp_sim::{simulate_event, RoutingEvent, SimConfig, VpSelection};
use mrt_codec::write_update_stream;
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(topo_dir) = flags.required("topo") else {
        return 2;
    };
    let Some(a) = flags.get_or("a", 0u32) else {
        return 2;
    };
    let Some(b) = flags.get_or("b", 0u32) else {
        return 2;
    };
    let Some(vps) = flags.get_or("vps", 25usize) else {
        return 2;
    };
    let Some(seed) = flags.get_or("seed", 42u64) else {
        return 2;
    };

    let topo = match load_bundle(&PathBuf::from(topo_dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load bundle: {e}");
            return 1;
        }
    };

    // Default to severing the two lowest-numbered clique members.
    let (a, b) = if a != 0 && b != 0 {
        (Asn(a), Asn(b))
    } else {
        let clique = topo.ground_truth.clique();
        if clique.len() < 2 {
            eprintln!("no clique pair to depeer; pass --a and --b explicitly");
            return 2;
        }
        (clique[0], clique[1])
    };
    if topo.ground_truth.relationships.get(a, b).is_none() {
        eprintln!("no {a}–{b} link in this topology");
        return 2;
    }

    let mut cfg = SimConfig::defaults(seed);
    cfg.vp_selection = VpSelection::Count(vps);
    cfg.full_feed_fraction = 1.0;
    let (before, after, updates) = simulate_event(&topo, RoutingEvent::LinkDown { a, b }, &cfg);

    let announced: usize = updates.iter().map(|m| m.announced.len()).sum();
    let withdrawn: usize = updates.iter().map(|m| m.withdrawn.len()).sum();
    println!(
        "severed {a} ↔ {b}: {} VPs affected, {announced} re-announcements, {withdrawn} withdrawals",
        updates.len()
    );
    println!(
        "unreachable (VP, destination) pairs: {} → {}",
        before.stats.unreachable_pairs, after.stats.unreachable_pairs
    );

    if let Some(out) = flags.get("out") {
        let file = match std::fs::File::create(out) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return 1;
            }
        };
        match write_update_stream(&updates, std::io::BufWriter::new(file), seed as u32) {
            Ok(n) => println!("wrote {n} BGP4MP records to {out}"),
            Err(e) => {
                eprintln!("failed writing update stream: {e}");
                return 1;
            }
        }
    }
    0
}
