//! `asrank validate` — score an as-rel file against a topology bundle's
//! ground truth and against emulated validation corpora.
//!
//! `--inferred` also accepts a raw `.mrt` RIB: the relationships are then
//! inferred through the staged engine, skipping the separate
//! `infer --out` round trip.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::{apply_cache_flags, rels_from};
use as_topology_gen::load_bundle;
use asrank_types::Parallelism;
use asrank_validation::{
    build_corpus, evaluate_against_corpus, evaluate_against_truth, CorpusConfig,
};
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    apply_cache_flags(&flags);
    let Some(inferred_path) = flags.required("inferred") else {
        return 2;
    };
    let Some(topo_dir) = flags.required("topo") else {
        return 2;
    };
    let Some(corpus_seed) = flags.get_or("corpus-seed", 42u64) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };

    let Some(inferred) = rels_from(inferred_path, threads) else {
        return 1;
    };
    let topo = match load_bundle(&PathBuf::from(topo_dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load bundle: {e}");
            return 1;
        }
    };

    let truth = &topo.ground_truth.relationships;
    let r = evaluate_against_truth(&inferred, truth);
    println!("against full ground truth:");
    println!(
        "  c2p PPV {:6.2}%  (n={}, {} reversed)",
        100.0 * r.c2p_ppv(),
        r.c2p.1,
        r.reversed_c2p
    );
    println!("  p2p PPV {:6.2}%  (n={})", 100.0 * r.p2p_ppv(), r.p2p.1);
    println!(
        "  coverage {:5.1}%   phantom links {}   missed links {}",
        100.0 * r.coverage(),
        r.phantom_links,
        r.missed_links
    );

    let corpus = build_corpus(&topo.ground_truth, &CorpusConfig::paper_like(corpus_seed));
    println!("\nagainst emulated validation sources (paper's method):");
    for row in evaluate_against_corpus(&inferred, &corpus) {
        println!(
            "  {:12} c2p {:6.2}% (n={})   p2p {:6.2}% (n={})   unobserved {}",
            row.source.name(),
            100.0 * row.c2p_ppv(),
            row.c2p.1,
            100.0 * row.p2p_ppv(),
            row.p2p.1,
            row.unobserved
        );
    }
    0
}
