//! `asrank query` — one-shot queries over a warm cache, or client mode
//! against a running `asrank serve`.
//!
//! ```text
//! asrank query --rib rib.mrt --cache-dir cache rel 10 1
//! asrank query --rib rib.mrt --cache-dir cache < queries.txt
//! asrank query --connect 127.0.0.1:4646 rank 7
//! ```
//!
//! Local mode maps the cached frames directly (same zero-copy path as
//! the daemon) — startup is one checksum pass over the RIB plus frame
//! validation; every query after that is allocation-free. With no query
//! on the command line, queries are read from stdin, one per line, and
//! answered one line each — the batch mode `make serve-smoke` drives.

use crate::args::Flags;
use crate::snapshot::load_serve_spec;
use asrank_serve::{format_answer, parse_request, Request, ServeSnapshot};
use std::io::{BufRead, BufReader, Write};

/// Split `--flag value` pairs (the leading portion) from the positional
/// query words (the trailing portion).
fn split_args(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if !args[i].starts_with("--") {
            break;
        }
        flags.push(args[i].clone());
        if args[i] != "--no-cache" {
            if let Some(v) = args.get(i + 1) {
                flags.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    (flags, args[i..].to_vec())
}

fn answer_local(snapshot: &ServeSnapshot, line: &str) -> String {
    match parse_request(line) {
        Ok(Request::Query(q)) => format_answer(&snapshot.answer(q)),
        Ok(Request::Gen) => snapshot.generation().to_string(),
        Ok(Request::Quit) => String::new(),
        Err(e) => format!("err {e}"),
    }
}

fn run_local(flags: &Flags, query: &[String]) -> i32 {
    let spec = match load_serve_spec(flags) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let snapshot = match ServeSnapshot::load(&spec, 1) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if query.is_empty() {
        // Batch mode: one query per stdin line, one answer per line.
        let stdin = std::io::stdin();
        let mut failed = false;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let answer = answer_local(&snapshot, text);
            failed |= answer.starts_with("err ");
            println!("{answer}");
        }
        i32::from(failed)
    } else {
        let answer = answer_local(&snapshot, &query.join(" "));
        println!("{answer}");
        i32::from(answer.starts_with("err "))
    }
}

fn run_connect(addr: &str, query: &[String]) -> i32 {
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return 1;
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return 1;
        }
    });
    let mut writer = stream;
    let mut ask = |line: &str| -> Option<String> {
        writeln!(writer, "{line}").ok()?;
        let mut out = String::new();
        reader.read_line(&mut out).ok()?;
        Some(out.trim().to_string())
    };

    let mut failed = false;
    if query.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let text = line.trim().to_string();
            if text.is_empty() {
                continue;
            }
            match ask(&text) {
                Some(answer) => {
                    failed |= answer.starts_with("err ");
                    println!("{answer}");
                }
                None => {
                    eprintln!("connection to {addr} lost");
                    return 1;
                }
            }
        }
    } else {
        match ask(&query.join(" ")) {
            Some(answer) => {
                failed |= answer.starts_with("err ");
                println!("{answer}");
            }
            None => {
                eprintln!("connection to {addr} lost");
                return 1;
            }
        }
    }
    i32::from(failed)
}

pub fn run(args: &[String]) -> i32 {
    let (flag_args, query) = split_args(args);
    let Some(flags) = Flags::parse_with_switches(&flag_args, crate::args::CACHE_SWITCHES) else {
        return 2;
    };
    match flags.get("connect") {
        Some(addr) => {
            let addr = addr.to_string();
            run_connect(&addr, &query)
        }
        None => run_local(&flags, &query),
    }
}
