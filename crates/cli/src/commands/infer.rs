//! `asrank infer` — run the ASRank pipeline over an MRT RIB file.
//!
//! Drives the staged engine (`asrank_core::engine::Snapshot`), so the
//! per-stage instrumentation is available: `--stage-report FILE` writes
//! the deterministic stage-report JSON (wall time, item counts, artifact
//! sizes, cache hits/misses) next to the normal output.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::load_inputs;
use asrank_core::write_as_rel;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    let inputs = match load_inputs(&flags) {
        Ok(i) => i,
        Err(code) => return code,
    };

    let mut snapshot = inputs.snapshot();
    let inference = match snapshot.inference() {
        Ok(inf) => inf,
        Err(e) => {
            eprintln!("inference failed: {e}");
            return 1;
        }
    };
    let (c2p, p2p, s2s) = inference.relationships.counts();
    println!(
        "paths: {} in / {} clean; links classified: {} ({c2p} c2p, {p2p} p2p, {s2s} s2s)",
        inference.report.sanitize.input_paths,
        inference.report.sanitize.output_paths,
        inference.report.total_links,
    );
    println!("clique: {:?}", inference.clique);
    println!(
        "steps: topdown {} | vp {} | repair {} | stub-clique {} | provider-less {} | p2p {} | conflicts {} | cycles {}",
        inference.report.c2p_from_topdown,
        inference.report.c2p_from_vps,
        inference.report.repaired_anomalies,
        inference.report.c2p_stub_clique,
        inference.report.c2p_providerless,
        inference.report.p2p_assigned,
        inference.report.conflicts,
        inference.report.cycle_links,
    );

    if let Some(out) = flags.get("out") {
        let file = match std::fs::File::create(out) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return 1;
            }
        };
        match write_as_rel(&inference.relationships, std::io::BufWriter::new(file)) {
            Ok(n) => println!("wrote {n} relationships to {out}"),
            Err(e) => {
                eprintln!("failed writing as-rel: {e}");
                return 1;
            }
        }
    }

    // With a persistent cache attached, also materialize the three cone
    // frames so the cache is serve-ready: `asrank serve` maps them
    // directly and cannot compute them itself.
    if snapshot.cache_dir().is_some() {
        if let Err(e) = snapshot.cones() {
            eprintln!("cone materialization failed: {e}");
            return 1;
        }
    }

    if let Some(report_path) = flags.get("stage-report") {
        let json = snapshot.stage_report().to_json();
        if let Err(e) = std::fs::write(report_path, &json) {
            eprintln!("cannot write stage report {report_path}: {e}");
            return 1;
        }
        println!("wrote stage report to {report_path}");
    }
    0
}
