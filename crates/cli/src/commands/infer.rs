//! `asrank infer` — run the ASRank pipeline over an MRT RIB file.

use crate::args::Flags;
use as_topology_gen::load_bundle;
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::write_as_rel;
use asrank_types::{Asn, Parallelism};
use mrt_codec::read_rib_dump;
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(rib) = flags.required("rib") else {
        return 2;
    };

    let file = match std::fs::File::open(rib) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {rib}: {e}");
            return 1;
        }
    };
    let paths = match read_rib_dump(std::io::BufReader::new(file)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("failed reading MRT: {e}");
            return 1;
        }
    };

    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };

    // IXP route-server list from the bundle, when provided.
    let mut cfg = InferenceConfig::default();
    if let Some(dir) = flags.get("topo") {
        match load_bundle(&PathBuf::from(dir)) {
            Ok(t) => {
                let ixps: Vec<Asn> = t.ixps.iter().map(|i| i.route_server).collect();
                cfg = InferenceConfig::with_ixps(ixps);
            }
            Err(e) => {
                eprintln!("failed to load bundle for IXP list: {e}");
                return 1;
            }
        }
    }

    cfg.parallelism = threads;
    let inference = infer(&paths, &cfg);
    let (c2p, p2p, s2s) = inference.relationships.counts();
    println!(
        "paths: {} in / {} clean; links classified: {} ({c2p} c2p, {p2p} p2p, {s2s} s2s)",
        inference.report.sanitize.input_paths,
        inference.report.sanitize.output_paths,
        inference.report.total_links,
    );
    println!("clique: {:?}", inference.clique);
    println!(
        "steps: topdown {} | vp {} | repair {} | stub-clique {} | provider-less {} | p2p {} | conflicts {} | cycles {}",
        inference.report.c2p_from_topdown,
        inference.report.c2p_from_vps,
        inference.report.repaired_anomalies,
        inference.report.c2p_stub_clique,
        inference.report.c2p_providerless,
        inference.report.p2p_assigned,
        inference.report.conflicts,
        inference.report.cycle_links,
    );

    if let Some(out) = flags.get("out") {
        let file = match std::fs::File::create(out) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return 1;
            }
        };
        match write_as_rel(&inference.relationships, std::io::BufWriter::new(file)) {
            Ok(n) => println!("wrote {n} relationships to {out}"),
            Err(e) => {
                eprintln!("failed writing as-rel: {e}");
                return 1;
            }
        }
    }
    0
}
