//! `asrank stability` — jackknife the inference over vantage points and
//! report per-link agreement.
//!
//! Each subsample is inferred through [`asrank_core::pipeline::infer`],
//! which drives the staged engine (`asrank_core::engine::Snapshot`)
//! under the hood — every jackknife run gets the same memoized stage
//! graph as the other pipeline commands.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::{apply_cache_flags, load_rib};
use asrank_core::pipeline::InferenceConfig;
use asrank_core::stability::jackknife;
use asrank_types::Parallelism;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    let Some(rib) = flags.required("rib") else {
        return 2;
    };
    let Some(subsamples) = flags.get_or("subsamples", 8usize) else {
        return 2;
    };
    let Some(seed) = flags.get_or("seed", 42u64) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };
    apply_cache_flags(&flags);

    let paths = match load_rib(rib, threads) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    let mut cfg = InferenceConfig::default();
    cfg.parallelism = threads;
    let report = jackknife(&paths, &cfg, subsamples, seed);
    println!(
        "jackknife over {} half-VP subsamples: mean agreement {:.3}",
        report.subsamples,
        report.mean_agreement()
    );
    for threshold in [0.99, 0.9, 0.5] {
        println!(
            "  links below {:.0}% agreement: {}",
            threshold * 100.0,
            report.unstable(threshold).len()
        );
    }
    let mut worst: Vec<_> = report.iter().filter(|(_, s)| s.observed > 0).collect();
    worst.sort_by(|a, b| {
        a.1.agreement()
            .partial_cmp(&b.1.agreement())
            .unwrap()
            .then_with(|| (a.0.a, a.0.b).cmp(&(b.0.a, b.0.b)))
    });
    println!("\nleast stable links:");
    for (link, s) in worst.iter().take(10) {
        println!("  {link}: {}/{} subsamples agree", s.agreeing, s.observed);
    }
    0
}
