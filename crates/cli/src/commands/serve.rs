//! `asrank serve` — run the zero-copy query daemon over a warm cache.
//!
//! The daemon never runs the pipeline: it resolves the persisted frame
//! paths from the RIB checksum + stage keys, memory-maps them, and
//! answers the line protocol on TCP (see `asrank_serve::proto`). A
//! watcher polls the RIB and frames; a re-warmed cache hot-swaps in
//! without dropping connections.

use crate::args::Flags;
use crate::snapshot::load_serve_spec;
use asrank_serve::Server;
use std::time::Duration;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(port) = flags.get_or("port", 4646u16) else {
        return 2;
    };
    let Some(poll_ms) = flags.get_or("poll-ms", 2000u64) else {
        return 2;
    };
    let spec = match load_serve_spec(&flags) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let poll = (poll_ms > 0).then(|| Duration::from_millis(poll_ms));
    let server = match Server::start(spec, port, poll) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    println!(
        "serving on {} (generation {})",
        server.addr(),
        server.state().generation()
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
