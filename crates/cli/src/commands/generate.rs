//! `asrank generate` — create a ground-truth topology bundle.

use crate::args::Flags;
use as_topology_gen::{generate, save_bundle, Scale, TopologyStats};
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(scale) = flags.get("scale").or(Some("small")) else {
        return 2;
    };
    let config = match Scale::parse(scale) {
        Ok(s) => s.topology(),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let Some(seed) = flags.get_or("seed", 42u64) else {
        return 2;
    };
    let Some(out) = flags.required("out") else {
        return 2;
    };
    let out = PathBuf::from(out);

    let topo = generate(&config, seed);
    let problems = topo.ground_truth.check_invariants();
    if !problems.is_empty() {
        eprintln!("generated topology failed invariants: {problems:?}");
        return 1;
    }
    if let Err(e) = save_bundle(&topo, &out) {
        eprintln!("failed to save bundle: {e}");
        return 1;
    }
    let stats = TopologyStats::compute(&topo.ground_truth);
    println!(
        "wrote {} ({} ASes, {} links [{} c2p / {} p2p / {} s2s], {} prefixes, clique {:?})",
        out.display(),
        stats.as_count,
        stats.link_count,
        stats.link_kinds.0,
        stats.link_kinds.1,
        stats.link_kinds.2,
        topo.ground_truth.prefix_count(),
        topo.ground_truth.clique(),
    );
    0
}
