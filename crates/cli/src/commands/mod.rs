//! Subcommand implementations. Each returns a process exit code.

pub mod audit;
pub mod depeer;
pub mod diff;
pub mod generate;
pub mod infer;
pub mod info;
pub mod query;
pub mod rank;
pub mod serve;
pub mod realism;
pub mod simulate;
pub mod stability;
pub mod timeline;
pub mod validate;
