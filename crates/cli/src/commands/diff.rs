//! `asrank diff` — compare two as-rel files (e.g. two monthly snapshots
//! or two inference runs) and report the delta.

use crate::args::Flags;
use asrank_core::{diff_relationships, read_as_rel};

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(old_path) = flags.required("old") else {
        return 2;
    };
    let Some(new_path) = flags.required("new") else {
        return 2;
    };
    let Some(show) = flags.get_or("show", 10usize) else {
        return 2;
    };

    let load = |path: &str| -> Option<asrank_types::RelationshipMap> {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return None;
            }
        };
        match read_as_rel(std::io::BufReader::new(file)) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("failed parsing {path}: {e}");
                None
            }
        }
    };
    let Some(old) = load(old_path) else { return 1 };
    let Some(new) = load(new_path) else { return 1 };

    let d = diff_relationships(&old, &new);
    println!(
        "links: {} → {}   unchanged {}   added {}   removed {}   changed {}   stability {:.1}%",
        old.len(),
        new.len(),
        d.unchanged,
        d.added.len(),
        d.removed.len(),
        d.changed.len(),
        100.0 * d.stability(),
    );
    if !d.changed.is_empty() {
        println!("\nchanged (first {show}):");
        for c in d.changed.iter().take(show) {
            println!("  {}: {:?} → {:?}", c.link, c.before, c.after);
        }
    }
    if !d.added.is_empty() {
        println!("\nadded (first {show}):");
        for (l, r) in d.added.iter().take(show) {
            println!("  {l}: {r:?}");
        }
    }
    if !d.removed.is_empty() {
        println!("\nremoved (first {show}):");
        for (l, r) in d.removed.iter().take(show) {
            println!("  {l}: {r:?}");
        }
    }
    0
}
