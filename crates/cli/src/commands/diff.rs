//! `asrank diff` — compare two as-rel files (e.g. two monthly snapshots
//! or two inference runs) and report the delta.
//!
//! Either side may be a raw `.mrt` RIB; those are inferred through the
//! staged engine before diffing, so `diff --old a.mrt --new b.mrt`
//! compares two captures directly.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::{apply_cache_flags, rels_from};
use asrank_core::diff_relationships;
use asrank_types::Parallelism;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse_with_switches(args, CACHE_SWITCHES) else {
        return 2;
    };
    apply_cache_flags(&flags);
    let Some(old_path) = flags.required("old") else {
        return 2;
    };
    let Some(new_path) = flags.required("new") else {
        return 2;
    };
    let Some(show) = flags.get_or("show", 10usize) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };

    let Some(old) = rels_from(old_path, threads) else {
        return 1;
    };
    let Some(new) = rels_from(new_path, threads) else {
        return 1;
    };

    let d = diff_relationships(&old, &new);
    println!(
        "links: {} → {}   unchanged {}   added {}   removed {}   changed {}   stability {:.1}%",
        old.len(),
        new.len(),
        d.unchanged,
        d.added.len(),
        d.removed.len(),
        d.changed.len(),
        100.0 * d.stability(),
    );
    if !d.changed.is_empty() {
        println!("\nchanged (first {show}):");
        for c in d.changed.iter().take(show) {
            println!("  {}: {:?} → {:?}", c.link, c.before, c.after);
        }
    }
    if !d.added.is_empty() {
        println!("\nadded (first {show}):");
        for (l, r) in d.added.iter().take(show) {
            println!("  {l}: {r:?}");
        }
    }
    if !d.removed.is_empty() {
        println!("\nremoved (first {show}):");
        for (l, r) in d.removed.iter().take(show) {
            println!("  {l}: {r:?}");
        }
    }
    0
}
