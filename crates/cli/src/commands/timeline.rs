//! `asrank timeline` — replay a RIB plus a sequence of BGP update dumps
//! through one incremental [`DeltaSession`], reporting the clique, the
//! relationship mix, and the top customer cones at every snapshot.
//!
//! The first positional argument is the RIB (TABLE_DUMP_V2 MRT); each
//! further positional is a BGP4MP update dump folded into one
//! [`UpdateBatch`] and applied in order. After each batch the session
//! refreshes, recomputing only the stages the batch dirtied — the
//! per-snapshot line reports how much of the DAG that was. Snapshots
//! are byte-identical to cold runs over the same final path set (pinned
//! by the `delta_equivalence` suite), so the trajectories printed here
//! are exactly what `asrank infer` would report at each instant.

use crate::args::{Flags, CACHE_SWITCHES};
use crate::snapshot::{apply_cache_flags, load_rib};
use asrank_core::delta::DeltaSession;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::rank_ases;
use asrank_types::Parallelism;
use mrt_codec::read_update_batch;

const USAGE: &str = "usage: asrank timeline RIB.mrt UPDATES.mrt... \
[--threads N|auto] [--cache-dir DIR] [--no-cache] [--stage-report FILE.json]";

pub fn run(args: &[String]) -> i32 {
    // Leading positionals (the dump files), then ordinary flags.
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (dumps, rest) = args.split_at(split);
    if dumps.len() < 2 {
        eprintln!("{USAGE}");
        return 2;
    }
    let Some(flags) = Flags::parse_with_switches(rest, CACHE_SWITCHES) else {
        return 2;
    };
    let Some(threads) = flags.get_or("threads", Parallelism::auto()) else {
        return 2;
    };
    apply_cache_flags(&flags);

    let paths = match load_rib(&dumps[0], threads) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let mut cfg = InferenceConfig::default();
    cfg.parallelism = threads;
    let mut session = match DeltaSession::new(paths, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("timeline session failed: {e}");
            return 1;
        }
    };
    if print_snapshot(&session, 0, &dumps[0], None) != 0 {
        return 1;
    }

    let mut reports = vec![session.stage_report().to_json()];
    for (i, dump) in dumps[1..].iter().enumerate() {
        let bytes = match std::fs::read(dump) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {dump}: {e}");
                return 1;
            }
        };
        let batch = match read_update_batch(&bytes, threads) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot decode {dump}: {e}");
                return 1;
            }
        };
        let churn = batch.len();
        if let Err(e) = session.apply(&batch) {
            eprintln!("applying {dump} failed: {e}");
            return 1;
        }
        let outcome = match session.refresh() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("refresh after {dump} failed: {e}");
                return 1;
            }
        };
        let detail = format!(
            "churn {churn} | recomputed {}/{} stages",
            outcome.recomputed,
            outcome.recomputed + outcome.skipped
        );
        if print_snapshot(&session, i + 1, dump, Some(&detail)) != 0 {
            return 1;
        }
        reports.push(session.stage_report().to_json());
    }

    if let Some(path) = flags.get("stage-report") {
        // One JSON array, one stage report per snapshot, in replay order.
        let json = format!("[\n{}\n]\n", reports.join(",\n"));
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write stage report {path}: {e}");
            return 1;
        }
        println!("wrote {} stage reports to {path}", reports.len());
    }
    0
}

/// One per-snapshot trajectory line: sample counts, clique, relationship
/// mix, and the five largest recursive customer cones.
fn print_snapshot(session: &DeltaSession, idx: usize, source: &str, delta: Option<&str>) -> i32 {
    let (inference, cones, degrees) =
        match (session.inference(), session.cones(), session.degrees()) {
            (Ok(i), Ok(c), Ok(d)) => (i, c, d),
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                eprintln!("snapshot {idx} artifacts unavailable: {e}");
                return 1;
            }
        };
    let (c2p, p2p, s2s) = inference.relationships.counts();
    let ranked = rank_ases(&cones.0, &degrees);
    let top: Vec<String> = ranked
        .iter()
        .take(5)
        .map(|r| format!("{}:{}", r.asn, r.cone.ases))
        .collect();
    let label = if idx == 0 { "rib" } else { "updates" };
    print!(
        "snapshot {idx} ({label} {source}): paths {} in / {} clean | clique {:?} | \
         c2p {c2p} p2p {p2p} s2s {s2s} | top cones {}",
        inference.report.sanitize.input_paths,
        inference.report.sanitize.output_paths,
        inference.clique,
        top.join(" "),
    );
    match delta {
        Some(d) => println!(" | {d}"),
        None => println!(" | cold"),
    }
    0
}
