//! `asrank realism` — check a topology bundle against published Internet
//! structure facts.

use crate::args::Flags;
use as_topology_gen::{check_realism, load_bundle};
use std::path::PathBuf;

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(topo_dir) = flags.required("topo") else {
        return 2;
    };
    let topo = match load_bundle(&PathBuf::from(topo_dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load bundle: {e}");
            return 1;
        }
    };
    let report = check_realism(&topo.ground_truth);
    for c in &report.checks {
        println!(
            "{} {:40} {:8.3}  (accepted {:.2}–{:.2})",
            if c.ok() { "ok  " } else { "FAIL" },
            c.name,
            c.value,
            c.range.0,
            c.range.1
        );
    }
    if report.all_ok() {
        0
    } else {
        1
    }
}
