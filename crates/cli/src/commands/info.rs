//! `asrank info` — inspect an MRT file: record type histogram, peers,
//! prefix counts, timestamp range.

use crate::args::Flags;
use mrt_codec::{MrtReader, MrtRecord};

pub fn run(args: &[String]) -> i32 {
    let Some(flags) = Flags::parse(args) else {
        return 2;
    };
    let Some(path) = flags.required("rib") else {
        return 2;
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return 1;
        }
    };
    let mut reader = MrtReader::new(std::io::BufReader::new(file));
    let (mut peer_tables, mut rib4, mut rib6, mut td1, mut updates, mut unknown) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut rib_entries = 0u64;
    let mut peers = 0usize;
    let (mut ts_min, mut ts_max) = (u32::MAX, 0u32);
    loop {
        match reader.next_record() {
            Ok(Some((ts, rec))) => {
                ts_min = ts_min.min(ts);
                ts_max = ts_max.max(ts);
                match rec {
                    MrtRecord::PeerIndexTable(t) => {
                        peer_tables += 1;
                        peers = peers.max(t.peers.len());
                    }
                    MrtRecord::RibIpv4Unicast(r) => {
                        rib4 += 1;
                        rib_entries += r.entries.len() as u64;
                    }
                    MrtRecord::RibIpv6Unicast(r) => {
                        rib6 += 1;
                        rib_entries += r.entries.len() as u64;
                    }
                    MrtRecord::TableDumpV1(_) => {
                        td1 += 1;
                        rib_entries += 1;
                    }
                    MrtRecord::Bgp4mpMessageAs4(_) => updates += 1,
                    MrtRecord::Unknown { .. } => unknown += 1,
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("parse error after {rib4 } v4 RIB records: {e}");
                return 1;
            }
        }
    }
    println!("records:");
    println!("  PEER_INDEX_TABLE   {peer_tables}  (largest peer table: {peers})");
    println!("  RIB_IPV4_UNICAST   {rib4}");
    println!("  RIB_IPV6_UNICAST   {rib6}");
    println!("  TABLE_DUMP (v1)    {td1}");
    println!("  BGP4MP updates     {updates}");
    println!("  unknown            {unknown}");
    println!("RIB entries total:   {rib_entries}");
    if ts_min <= ts_max {
        println!("timestamps:          {ts_min} … {ts_max}");
    }
    0
}
