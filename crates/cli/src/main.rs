//! `asrank` — the command-line toolchain of the reproduction.
//!
//! ```text
//! asrank generate  --scale small --seed 42 --out topo/
//! asrank simulate  --topo topo/ --vps 30 --out rib.mrt
//! asrank infer     --rib rib.mrt --topo topo/ --out as-rel.txt
//! asrank validate  --inferred as-rel.txt --topo topo/
//! asrank rank      --rib rib.mrt --topo topo/ --top 10
//! asrank stability --rib rib.mrt --subsamples 8
//! ```
//!
//! Each stage communicates through on-disk artifacts in open formats
//! (topology bundles, RFC 6396 MRT dumps, CAIDA as-rel text), so any
//! stage can be swapped for real data — `asrank infer` will happily
//! consume a RouteViews TABLE_DUMP_V2 file.

mod args;
mod commands;
mod snapshot;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("audit") => commands::audit::run(&argv[1..]),
        Some("generate") => commands::generate::run(&argv[1..]),
        Some("depeer") => commands::depeer::run(&argv[1..]),
        Some("diff") => commands::diff::run(&argv[1..]),
        Some("simulate") => commands::simulate::run(&argv[1..]),
        Some("infer") => commands::infer::run(&argv[1..]),
        Some("info") => commands::info::run(&argv[1..]),
        Some("query") => commands::query::run(&argv[1..]),
        Some("serve") => commands::serve::run(&argv[1..]),
        Some("validate") => commands::validate::run(&argv[1..]),
        Some("rank") => commands::rank::run(&argv[1..]),
        Some("realism") => commands::realism::run(&argv[1..]),
        Some("stability") => commands::stability::run(&argv[1..]),
        Some("timeline") => commands::timeline::run(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            if argv.is_empty() {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
asrank — AS relationships, customer cones, and validation (IMC 2013 reproduction)

subcommands:
  generate   --scale tiny|small|medium|internet|tenx [--seed N] --out DIR
  simulate   --topo DIR [--vps N] [--full-feed F] [--seed N] [--threads N]
             [--dest-sample N] [--anomalies none|realistic] --out FILE.mrt
  infer      --rib FILE.mrt [--topo DIR] [--out as-rel.txt]
             [--stage-report FILE.json] [--threads N|auto]
  audit      --rels as-rel.txt [--rib FILE.mrt] [--clique A,B,C] [--threads N|auto]
  audit      --stage NAME --rib FILE.mrt [--topo DIR] [--threads N|auto]
  validate   --inferred as-rel.txt|FILE.mrt --topo DIR [--corpus-seed N]
  rank       --rib FILE.mrt [--topo DIR] [--top N] [--threads N|auto]
  stability  --rib FILE.mrt [--subsamples K] [--seed N] [--threads N|auto]
  timeline   RIB.mrt UPDATES.mrt... [--threads N|auto] [--cache-dir DIR]
             [--stage-report FILE.json]
  depeer     --topo DIR [--a ASN --b ASN] [--vps N] [--seed N] [--out FILE.mrt]
  diff       --old as-rel.txt|FILE.mrt --new as-rel.txt|FILE.mrt [--show N]
  realism    --topo DIR
  info       --rib FILE.mrt
  serve      --rib FILE.mrt --cache-dir DIR [--topo DIR] [--port N]
             [--poll-ms N]
  query      --rib FILE.mrt --cache-dir DIR [--topo DIR] [QUERY...]
  query      --connect HOST:PORT [QUERY...]

--threads takes a worker count (1 = deterministic single-threaded order,
which produces identical output to any other value) or \"auto\"/0 for all
available cores.

Every pipeline-running subcommand (infer, rank, validate, diff,
stability, audit) also accepts [--cache-dir DIR] [--no-cache]:
--cache-dir persists expensive artifacts (decoded RIBs, every engine
stage) as checksummed binary files keyed by input content + config, so a
warm re-run skips straight to the answer; --no-cache disables it.
Corrupt or stale cache files are recomputed silently, never trusted.

serve runs a zero-copy query daemon over a cache previously warmed by
`infer --cache-dir` (which persists the inference and cone frames
serve maps): frames are
memory-mapped and queries answered in place, with hot-swap to a
re-warmed cache. query answers the same line protocol one-shot (local
mmap) or against a running daemon (--connect); with no QUERY on the
command line it reads queries from stdin, one per line. Queries:
rel X Y | cone FLAVOR X Y | cone-size FLAVOR X | degree X | rank X |
gen, with FLAVOR one of recursive, bgp, pp.

audit --stage materializes one memoized engine artifact and audits only
it; NAME is one of s1_sanitize, s2_degrees, s3_clique, path_arena,
s4_poison, observed_links, s5_topdown, s6_vp_providers,
s7_anomaly_repair, s8_stub_clique, s9_providerless, s10_p2p,
s11_inference, cone_recursive, cone_bgp_observed, cone_provider_peer.";
