//! End-to-end tests of the CLI toolchain, driving the subcommand entry
//! points directly (each `run` returns the process exit code).

use std::path::PathBuf;

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asrank_cli_test_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// The command modules are private to the binary; re-run the binary's
// logic by invoking the compiled binary is not possible in unit tests
// without cargo-run, so this test links the same crate internals through
// a thin include. Instead, spawn the actual binary via CARGO_BIN_EXE.
fn bin() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_asrank"))
}

#[test]
fn full_toolchain_roundtrip() {
    let dir = tmp("roundtrip");
    let topo = dir.join("topo");
    let rib = dir.join("rib.mrt");
    let rel = dir.join("as-rel.txt");

    // generate
    let out = bin()
        .args(sv(&[
            "generate",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out",
            topo.to_str().unwrap(),
        ]))
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(topo.join("as-rel.txt").exists());
    assert!(topo.join("classes.txt").exists());

    // simulate
    let out = bin()
        .args(sv(&[
            "simulate",
            "--topo",
            topo.to_str().unwrap(),
            "--vps",
            "8",
            "--seed",
            "7",
            "--out",
            rib.to_str().unwrap(),
        ]))
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(rib.exists());

    // infer
    let out = bin()
        .args(sv(&[
            "infer",
            "--rib",
            rib.to_str().unwrap(),
            "--topo",
            topo.to_str().unwrap(),
            "--out",
            rel.to_str().unwrap(),
        ]))
        .output()
        .expect("run infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clique"), "{stdout}");
    assert!(rel.exists());

    // validate
    let out = bin()
        .args(sv(&[
            "validate",
            "--inferred",
            rel.to_str().unwrap(),
            "--topo",
            topo.to_str().unwrap(),
        ]))
        .output()
        .expect("run validate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("c2p PPV"), "{stdout}");

    // rank
    let out = bin()
        .args(sv(&[
            "rank",
            "--rib",
            rib.to_str().unwrap(),
            "--topo",
            topo.to_str().unwrap(),
            "--top",
            "3",
        ]))
        .output()
        .expect("run rank");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cone ASes"));

    // depeer (writes an update stream)
    let storm = dir.join("storm.mrt");
    let out = bin()
        .args(sv(&[
            "depeer",
            "--topo",
            topo.to_str().unwrap(),
            "--vps",
            "8",
            "--seed",
            "7",
            "--out",
            storm.to_str().unwrap(),
        ]))
        .output()
        .expect("run depeer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(storm.exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_passes_on_inferred_output_and_fails_on_corruption() {
    let dir = tmp("audit");
    let topo = dir.join("topo");
    let rib = dir.join("rib.mrt");
    let rel = dir.join("as-rel.txt");

    // The clean half needs an instance the inference solves with margin:
    // at tiny scale with 8 VPs the valley-violation rate of the inferred
    // assignment varies seed to seed (many exceed the audit's 5% error
    // threshold on visibility alone), and any change to the generator's
    // RNG stream re-rolls every instance. Seed 9 infers valley-free
    // under the current stream; re-scan if the generator's draws change.
    for args in [
        sv(&["generate", "--scale", "tiny", "--seed", "9", "--out", topo.to_str().unwrap()]),
        sv(&["simulate", "--topo", topo.to_str().unwrap(), "--vps", "8", "--seed", "9", "--out", rib.to_str().unwrap()]),
        sv(&["infer", "--rib", rib.to_str().unwrap(), "--out", rel.to_str().unwrap()]),
    ] {
        let out = bin().args(&args).output().expect("run pipeline stage");
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Clean inferred output: exit 0, every structural check reports ok.
    let out = bin()
        .args(sv(&[
            "audit",
            "--rels",
            rel.to_str().unwrap(),
            "--rib",
            rib.to_str().unwrap(),
        ]))
        .output()
        .expect("run audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    assert!(stdout.contains("csr-well-formed"), "{stdout}");
    assert!(stdout.contains("cone-containment"), "{stdout}");

    // Deliberately corrupt the relationship file (demote every c2p to
    // p2p): the observed paths are no longer explicable and the audit
    // must fail loudly with exit 1.
    let text = std::fs::read_to_string(&rel).unwrap();
    let corrupted = dir.join("corrupted.txt");
    std::fs::write(&corrupted, text.replace("|-1", "|0")).unwrap();
    let out = bin()
        .args(sv(&[
            "audit",
            "--rels",
            corrupted.to_str().unwrap(),
            "--rib",
            rib.to_str().unwrap(),
        ]))
        .output()
        .expect("run audit on corrupted file");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("ERROR"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_flag_errors() {
    // Missing required --rels is a usage error.
    let out = bin().arg("audit").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    // Unreadable file is a runtime error.
    let out = bin()
        .args(["audit", "--rels", "/nonexistent/as-rel.txt"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    // Malformed clique list is a usage error.
    let out = bin()
        .args(["audit", "--rels", "/nonexistent/as-rel.txt", "--clique", "1,x"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("subcommands"));
}

#[test]
fn missing_required_flag_fails() {
    let out = bin().args(["generate"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn infer_rejects_missing_file() {
    let out = bin()
        .args(["infer", "--rib", "/nonexistent/path.mrt"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn stability_runs_on_generated_data() {
    let dir = tmp("stability");
    let topo = dir.join("topo");
    let rib = dir.join("rib.mrt");
    assert!(bin()
        .args(sv(&[
            "generate",
            "--scale",
            "tiny",
            "--seed",
            "3",
            "--out",
            topo.to_str().unwrap()
        ]))
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(sv(&[
            "simulate",
            "--topo",
            topo.to_str().unwrap(),
            "--vps",
            "6",
            "--seed",
            "3",
            "--out",
            rib.to_str().unwrap(),
        ]))
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(sv(&[
            "stability",
            "--rib",
            rib.to_str().unwrap(),
            "--subsamples",
            "4",
        ]))
        .output()
        .expect("run stability");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mean agreement"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_dir_warm_run_matches_cold_and_no_cache_disables() {
    let dir = tmp("cache");
    let topo = dir.join("topo");
    let rib = dir.join("rib.mrt");
    let cache = dir.join("cache");
    let cold_rel = dir.join("cold.txt");
    let warm_rel = dir.join("warm.txt");
    let plain_rel = dir.join("plain.txt");

    for args in [
        sv(&["generate", "--scale", "tiny", "--seed", "11", "--out", topo.to_str().unwrap()]),
        sv(&["simulate", "--topo", topo.to_str().unwrap(), "--vps", "8", "--seed", "11", "--out", rib.to_str().unwrap()]),
    ] {
        assert!(bin().args(&args).status().unwrap().success());
    }

    // Cold run populates the cache directory.
    let out = bin()
        .args(sv(&[
            "infer",
            "--rib",
            rib.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--out",
            cold_rel.to_str().unwrap(),
        ]))
        .output()
        .expect("cold infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let entries = std::fs::read_dir(&cache).unwrap().count();
    assert!(entries > 0, "cold run wrote no cache entries");

    // Inference-relevant stdout: everything except the trailing
    // "wrote N relationships to PATH" line (the path differs per run).
    let inference_lines = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.starts_with("wrote"))
            .collect::<Vec<_>>()
            .join("\n")
    };

    // Warm run: same stdout, same as-rel bytes, nothing new computed.
    let warm = bin()
        .args(sv(&[
            "infer",
            "--rib",
            rib.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--out",
            warm_rel.to_str().unwrap(),
        ]))
        .output()
        .expect("warm infer");
    assert!(warm.status.success());
    assert_eq!(inference_lines(&out.stdout), inference_lines(&warm.stdout));
    assert_eq!(
        std::fs::read(&cold_rel).unwrap(),
        std::fs::read(&warm_rel).unwrap()
    );

    // --no-cache wins over --cache-dir and still produces identical output.
    let plain = bin()
        .args(sv(&[
            "infer",
            "--rib",
            rib.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--no-cache",
            "--out",
            plain_rel.to_str().unwrap(),
        ]))
        .output()
        .expect("no-cache infer");
    assert!(plain.status.success());
    assert_eq!(inference_lines(&out.stdout), inference_lines(&plain.stdout));
    assert_eq!(
        std::fs::read(&cold_rel).unwrap(),
        std::fs::read(&plain_rel).unwrap()
    );

    // A cached rank run over the same RIB shares the inference artifacts.
    let ranked = bin()
        .args(sv(&[
            "rank",
            "--rib",
            rib.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--top",
            "3",
        ]))
        .output()
        .expect("cached rank");
    assert!(ranked.status.success());
    assert!(String::from_utf8_lossy(&ranked.stdout).contains("cone ASes"));

    let _ = std::fs::remove_dir_all(&dir);
}
