//! # asrank-validation
//!
//! The paper's validation methodology, inverted for a simulated world.
//!
//! The original authors assembled the largest validation corpus of its
//! time from three independent sources — relationships **directly
//! reported** by network operators, **RPSL** `import`/`export` policies
//! in routing registries, and relationships encoded in **BGP
//! communities** — and measured the PPV of their inferences against it
//! (≈ 99.6 % c2p, ≈ 98.7 % p2p).
//!
//! In the reproduction the ground truth is known exactly, which lets us
//! do both of the things the paper could not and could:
//!
//! * [`sources`] *emulates the corpus-generating process* of each
//!   validation source — per-source coverage, population bias, and error
//!   (staleness, misconfiguration) — so the paper's PPV-vs-corpus
//!   analysis runs unchanged; and
//! * [`metrics`] also scores inferences against the *full* ground truth,
//!   quantifying the corpus bias the paper could only discuss.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod significance;
pub mod sources;

pub use metrics::{
    evaluate_against_corpus, evaluate_against_truth, ppv_by_class, GroundTruthReport, SourcePpv,
};
pub use significance::{paired_comparison, sign_test, PairedComparison};
pub use sources::{
    build_corpus, Assertion, CorpusConfig, SourceConfig, ValidationCorpus, ValidationSource,
};
