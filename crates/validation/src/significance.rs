//! Statistical significance for algorithm comparisons.
//!
//! "ASRank beats Gao" needs more than two percentages: on the *same* set
//! of links, the exact sign test (McNemar without the normal
//! approximation) asks whether the discordant links — those one
//! algorithm gets right and the other wrong — split asymmetrically
//! enough to rule out chance. This is the right test because both
//! algorithms are evaluated on identical items.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of a paired comparison of two relationship inferences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedComparison {
    /// Links only algorithm A got right.
    pub a_only: usize,
    /// Links only algorithm B got right.
    pub b_only: usize,
    /// Links both got right.
    pub both: usize,
    /// Links neither got right.
    pub neither: usize,
    /// Two-sided exact sign-test p-value over the discordant pairs.
    pub p_value: f64,
}

impl PairedComparison {
    /// Total links compared.
    pub fn total(&self) -> usize {
        self.a_only + self.b_only + self.both + self.neither
    }

    /// True when A is better and the difference is significant at `alpha`.
    pub fn a_significantly_better(&self, alpha: f64) -> bool {
        self.a_only > self.b_only && self.p_value < alpha
    }
}

/// Exact two-sided binomial sign test: probability of a split at least
/// this extreme among `n = a + b` discordant pairs under p = ½.
///
/// Computed in log space so hundreds of discordant pairs don't overflow.
pub fn sign_test(a: usize, b: usize) -> f64 {
    let n = a + b;
    if n == 0 {
        return 1.0;
    }
    let k = a.min(b);
    // P(X <= k) for X ~ Binomial(n, 1/2), then doubled (two-sided).
    let ln_choose = |n: usize, k: usize| -> f64 {
        // ln C(n, k) via lgamma-free accumulation.
        let mut s = 0.0f64;
        for i in 0..k {
            s += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        s
    };
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    let mut tail = 0.0f64;
    for i in 0..=k {
        tail += (ln_choose(n, i) + ln_half_n).exp();
    }
    (2.0 * tail).min(1.0)
}

/// Compare two inferences link-by-link against ground truth, over the
/// links *both* classified (the paper's comparisons are restricted to
/// common coverage too).
pub fn paired_comparison(
    a: &RelationshipMap,
    b: &RelationshipMap,
    truth: &RelationshipMap,
) -> PairedComparison {
    let (mut a_only, mut b_only, mut both, mut neither) = (0, 0, 0, 0);
    for (link, want) in truth.iter() {
        let (Some(ga), Some(gb)) = (a.get(link.a, link.b), b.get(link.a, link.b)) else {
            continue;
        };
        // Kind-level correctness with exact orientation for c2p.
        let right = |got: LinkRel| match want.kind() {
            RelationshipKind::C2p => got == want,
            _ => got.kind() == want.kind(),
        };
        match (right(ga), right(gb)) {
            (true, true) => both += 1,
            (true, false) => a_only += 1,
            (false, true) => b_only += 1,
            (false, false) => neither += 1,
        }
    }
    PairedComparison {
        a_only,
        b_only,
        both,
        neither,
        p_value: sign_test(a_only, b_only),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_test_extremes() {
        assert!((sign_test(0, 0) - 1.0).abs() < 1e-12);
        assert!((sign_test(5, 5) - 1.0).abs() < 0.3, "balanced ≈ 1");
        assert!(sign_test(30, 0) < 1e-6, "one-sided split is significant");
        // Symmetry.
        assert!((sign_test(20, 5) - sign_test(5, 20)).abs() < 1e-12);
    }

    #[test]
    fn sign_test_known_value() {
        // n=10, k=2: P(X<=2) = (1+10+45)/1024 = 0.0546875 → two-sided
        // 0.109375.
        assert!((sign_test(2, 8) - 0.109375).abs() < 1e-9);
    }

    #[test]
    fn paired_comparison_counts() {
        let mut truth = RelationshipMap::new();
        truth.insert_c2p(Asn(1), Asn(2));
        truth.insert_c2p(Asn(3), Asn(4));
        truth.insert_p2p(Asn(5), Asn(6));
        truth.insert_p2p(Asn(7), Asn(8)); // b never classifies this

        let mut a = RelationshipMap::new();
        a.insert_c2p(Asn(1), Asn(2)); // right
        a.insert_c2p(Asn(3), Asn(4)); // right
        a.insert_c2p(Asn(5), Asn(6)); // wrong kind
        a.insert_p2p(Asn(7), Asn(8));

        let mut b = RelationshipMap::new();
        b.insert_c2p(Asn(1), Asn(2)); // right
        b.insert_c2p(Asn(4), Asn(3)); // reversed → wrong
        b.insert_p2p(Asn(5), Asn(6)); // right

        let c = paired_comparison(&a, &b, &truth);
        // Link (7,8) is not classified by b → excluded.
        assert_eq!(c.total(), 3);
        assert_eq!(c.both, 1);
        assert_eq!(c.a_only, 1);
        assert_eq!(c.b_only, 1);
        assert_eq!(c.neither, 0);
        assert!((c.p_value - 1.0).abs() < 1e-9, "1-1 split is chance");
        assert!(!c.a_significantly_better(0.05));
    }

    #[test]
    fn lopsided_comparison_is_significant() {
        let mut truth = RelationshipMap::new();
        let mut a = RelationshipMap::new();
        let mut b = RelationshipMap::new();
        for i in 0..40u32 {
            let (c, p) = (Asn(100 + i), Asn(1));
            if c == p {
                continue;
            }
            truth.insert_c2p(c, p);
            a.insert_c2p(c, p); // a always right
            b.insert_p2p(c, p); // b always wrong
        }
        let c = paired_comparison(&a, &b, &truth);
        assert_eq!(c.b_only, 0);
        assert!(c.a_significantly_better(0.01), "p={}", c.p_value);
    }
}
