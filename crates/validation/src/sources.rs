//! Validation-source emulators.
//!
//! Each emulator reproduces the *generating process* of one of the
//! paper's corpora rather than its exact contents:
//!
//! * **Directly reported** — operators who answered CAIDA's call. Few
//!   networks, skewed toward engaged transit operators; near-perfect
//!   accuracy; reveals all of a reporter's links.
//! * **RPSL** — registry `import`/`export` objects. Registry culture
//!   concentrates in transit networks; objects go stale as businesses
//!   change, so a tunable fraction of assertions reflect an outdated
//!   relationship; c2p-heavy (policies describe one's providers).
//! * **BGP communities** — relationship-tagging communities observed in
//!   announcements, decoded via published community dictionaries. The
//!   largest corpus; only ASes that tag are covered; p2p-rich (peer
//!   tagging is the dominant convention); small decoding error.

use asrank_types::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The three corpus sources of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValidationSource {
    /// Operator-reported relationships.
    DirectReport,
    /// Routing-registry (RPSL) policies.
    Rpsl,
    /// BGP community-derived relationships.
    Communities,
}

impl ValidationSource {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ValidationSource::DirectReport => "direct",
            ValidationSource::Rpsl => "rpsl",
            ValidationSource::Communities => "communities",
        }
    }
}

/// One validation assertion: "the `a`–`b` link has this relationship,
/// according to `source`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assertion {
    /// The link.
    pub link: AsLink,
    /// The asserted relationship (canonical orientation).
    pub rel: LinkRel,
    /// Which corpus it came from.
    pub source: ValidationSource,
}

/// Parameters of one emulated source.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SourceConfig {
    /// Fraction of eligible ASes that contribute assertions.
    pub participation: f64,
    /// Probability an assertion is wrong (stale object, typo, decoding
    /// error). Errors flip c2p↔p2p or reverse a c2p orientation.
    pub error_rate: f64,
    /// Extra selection weight for transit ASes (1.0 = unbiased). The
    /// paper's sources all skew toward transit operators.
    pub transit_bias: f64,
    /// Probability that a participant's *p2p* link is asserted (c2p
    /// links are always asserted by participants) — models the c2p- or
    /// p2p-heaviness of each corpus.
    pub p2p_inclusion: f64,
}

/// Corpus-wide configuration with per-source parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Operator reports: rare, accurate, balanced.
    pub direct: SourceConfig,
    /// Registry data: moderately common among transit, stale.
    pub rpsl: SourceConfig,
    /// Communities: common among transit, p2p-rich, accurate.
    pub communities: SourceConfig,
    /// Seed for all sampling.
    pub seed: u64,
}

impl CorpusConfig {
    /// Defaults shaped like the paper's corpus: a small accurate direct
    /// set, a stale c2p-heavy RPSL set, and a large p2p-rich community
    /// set.
    pub fn paper_like(seed: u64) -> Self {
        CorpusConfig {
            direct: SourceConfig {
                participation: 0.02,
                error_rate: 0.002,
                transit_bias: 6.0,
                p2p_inclusion: 1.0,
            },
            rpsl: SourceConfig {
                participation: 0.15,
                error_rate: 0.06,
                transit_bias: 3.0,
                p2p_inclusion: 0.3,
            },
            communities: SourceConfig {
                participation: 0.10,
                error_rate: 0.01,
                transit_bias: 4.0,
                p2p_inclusion: 1.0,
            },
            seed,
        }
    }
}

/// The emulated validation corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValidationCorpus {
    /// All assertions, across sources. A link may be asserted by several
    /// sources (the paper deduplicates per analysis; we keep all and let
    /// the metrics layer group by source).
    pub assertions: Vec<Assertion>,
}

impl ValidationCorpus {
    /// Assertions from one source.
    pub fn from_source(&self, source: ValidationSource) -> impl Iterator<Item = &Assertion> + '_ {
        self.assertions.iter().filter(move |a| a.source == source)
    }

    /// Count assertions by (source, kind): returns
    /// `(c2p, p2p, s2s)` for the given source.
    pub fn counts(&self, source: ValidationSource) -> (usize, usize, usize) {
        let mut out = (0, 0, 0);
        for a in self.from_source(source) {
            match a.rel.kind() {
                RelationshipKind::C2p => out.0 += 1,
                RelationshipKind::P2p => out.1 += 1,
                RelationshipKind::S2s => out.2 += 1,
            }
        }
        out
    }

    /// Total number of assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Fraction of corpus assertions that are wrong w.r.t. ground truth —
    /// the quantity the paper could only bound indirectly.
    pub fn corpus_error(&self, truth: &RelationshipMap) -> f64 {
        if self.assertions.is_empty() {
            return 0.0;
        }
        let wrong = self
            .assertions
            .iter()
            .filter(|a| truth.get(a.link.a, a.link.b) != Some(a.rel))
            .count();
        wrong as f64 / self.assertions.len() as f64
    }
}

/// Build an emulated validation corpus from ground truth.
pub fn build_corpus(gt: &GroundTruth, cfg: &CorpusConfig) -> ValidationCorpus {
    let mut corpus = ValidationCorpus::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0a11_da7a);
    for (source, sc) in [
        (ValidationSource::DirectReport, cfg.direct),
        (ValidationSource::Rpsl, cfg.rpsl),
        (ValidationSource::Communities, cfg.communities),
    ] {
        emulate_source(gt, source, &sc, &mut rng, &mut corpus);
    }
    corpus
}

fn emulate_source(
    gt: &GroundTruth,
    source: ValidationSource,
    sc: &SourceConfig,
    rng: &mut StdRng,
    corpus: &mut ValidationCorpus,
) {
    // Choose participants with transit bias.
    let mut ases: Vec<(Asn, bool)> = gt
        .classes
        .iter()
        .map(|(&a, &c)| (a, c.is_transit()))
        .collect();
    ases.sort_by_key(|(a, _)| *a);
    let mut participants: Vec<Asn> = Vec::new();
    for (asn, transit) in ases {
        let p = if transit {
            (sc.participation * sc.transit_bias).min(1.0)
        } else {
            sc.participation
        };
        if rng.random_bool(p) {
            participants.push(asn);
        }
    }
    let participant_set: std::collections::HashSet<Asn> = participants.iter().copied().collect();

    // Each participant asserts its own links.
    let mut links: Vec<(AsLink, LinkRel)> = gt.relationships.iter().collect();
    links.sort_by_key(|(l, _)| (l.a, l.b));
    for (link, rel) in links {
        if !participant_set.contains(&link.a) && !participant_set.contains(&link.b) {
            continue;
        }
        if rel.kind() == RelationshipKind::P2p && !rng.random_bool(sc.p2p_inclusion) {
            continue;
        }
        let asserted = if rng.random_bool(sc.error_rate) {
            corrupt(rel, rng)
        } else {
            rel
        };
        corpus.assertions.push(Assertion {
            link,
            rel: asserted,
            source,
        });
    }
}

/// Produce a *wrong* assertion from a true relationship: flip kind or
/// reverse orientation.
fn corrupt(rel: LinkRel, rng: &mut StdRng) -> LinkRel {
    match rel {
        LinkRel::AC2pB => {
            if rng.random_bool(0.5) {
                LinkRel::P2p
            } else {
                LinkRel::AP2cB
            }
        }
        LinkRel::AP2cB => {
            if rng.random_bool(0.5) {
                LinkRel::P2p
            } else {
                LinkRel::AC2pB
            }
        }
        LinkRel::P2p => {
            if rng.random_bool(0.5) {
                LinkRel::AC2pB
            } else {
                LinkRel::AP2cB
            }
        }
        LinkRel::S2s => LinkRel::P2p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology_gen::{generate, TopologyConfig};

    fn topo() -> GroundTruth {
        generate(&TopologyConfig::small(), 5).ground_truth
    }

    #[test]
    fn corpus_respects_error_rates() {
        let gt = topo();
        let cfg = CorpusConfig::paper_like(1);
        let corpus = build_corpus(&gt, &cfg);
        assert!(!corpus.is_empty());

        // Direct reports should be nearly perfect; RPSL notably worse.
        let direct_err = error_of(&corpus, &gt, ValidationSource::DirectReport);
        let rpsl_err = error_of(&corpus, &gt, ValidationSource::Rpsl);
        assert!(direct_err < 0.02, "direct error {direct_err}");
        assert!(rpsl_err > 0.02, "rpsl error {rpsl_err}");
        assert!(rpsl_err < 0.15, "rpsl error {rpsl_err}");
    }

    fn error_of(c: &ValidationCorpus, gt: &GroundTruth, s: ValidationSource) -> f64 {
        let (mut wrong, mut total) = (0usize, 0usize);
        for a in c.from_source(s) {
            total += 1;
            if gt.relationships.get(a.link.a, a.link.b) != Some(a.rel) {
                wrong += 1;
            }
        }
        wrong as f64 / total.max(1) as f64
    }

    #[test]
    fn rpsl_is_c2p_heavy_communities_p2p_rich() {
        let gt = topo();
        let corpus = build_corpus(&gt, &CorpusConfig::paper_like(2));
        let (rc2p, rp2p, _) = corpus.counts(ValidationSource::Rpsl);
        let (cc2p, cp2p, _) = corpus.counts(ValidationSource::Communities);
        let rpsl_p2p_share = rp2p as f64 / (rc2p + rp2p).max(1) as f64;
        let comm_p2p_share = cp2p as f64 / (cc2p + cp2p).max(1) as f64;
        assert!(
            comm_p2p_share > rpsl_p2p_share,
            "communities {comm_p2p_share} vs rpsl {rpsl_p2p_share}"
        );
    }

    #[test]
    fn direct_reports_are_the_smallest_corpus() {
        let gt = topo();
        let corpus = build_corpus(&gt, &CorpusConfig::paper_like(3));
        let n = |s| corpus.from_source(s).count();
        assert!(n(ValidationSource::DirectReport) < n(ValidationSource::Rpsl));
        assert!(n(ValidationSource::DirectReport) < n(ValidationSource::Communities));
    }

    #[test]
    fn deterministic_for_seed() {
        let gt = topo();
        let a = build_corpus(&gt, &CorpusConfig::paper_like(7));
        let b = build_corpus(&gt, &CorpusConfig::paper_like(7));
        assert_eq!(a.assertions, b.assertions);
        let c = build_corpus(&gt, &CorpusConfig::paper_like(8));
        assert_ne!(a.assertions, c.assertions);
    }

    #[test]
    fn corpus_error_matches_manual_count() {
        let gt = topo();
        let corpus = build_corpus(&gt, &CorpusConfig::paper_like(9));
        let manual: f64 = {
            let wrong = corpus
                .assertions
                .iter()
                .filter(|a| gt.relationships.get(a.link.a, a.link.b) != Some(a.rel))
                .count();
            wrong as f64 / corpus.len() as f64
        };
        assert!((corpus.corpus_error(&gt.relationships) - manual).abs() < 1e-12);
    }

    #[test]
    fn corrupt_always_differs() {
        let mut rng = StdRng::seed_from_u64(0);
        for rel in [LinkRel::AC2pB, LinkRel::AP2cB, LinkRel::P2p, LinkRel::S2s] {
            for _ in 0..20 {
                assert_ne!(corrupt(rel, &mut rng), rel);
            }
        }
    }
}
