//! Scoring inferences: PPV against corpora and against ground truth.

use crate::sources::{ValidationCorpus, ValidationSource};
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// PPV of an inference against one validation source, split by
/// relationship kind — the layout of the paper's headline table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SourcePpv {
    /// The corpus source.
    pub source: ValidationSource,
    /// (correct, total) over assertions the source labels c2p.
    pub c2p: (usize, usize),
    /// (correct, total) over assertions the source labels p2p.
    pub p2p: (usize, usize),
    /// Assertions whose link the inference never classified.
    pub unobserved: usize,
}

impl SourcePpv {
    /// c2p PPV (1.0 when the source asserts no c2p links).
    pub fn c2p_ppv(&self) -> f64 {
        if self.c2p.1 == 0 {
            1.0
        } else {
            self.c2p.0 as f64 / self.c2p.1 as f64
        }
    }

    /// p2p PPV (1.0 when the source asserts no p2p links).
    pub fn p2p_ppv(&self) -> f64 {
        if self.p2p.1 == 0 {
            1.0
        } else {
            self.p2p.0 as f64 / self.p2p.1 as f64
        }
    }
}

/// Score an inference against each source of a corpus.
///
/// For every assertion whose link the inference classified, the
/// assertion's kind picks the bucket (as in the paper: "of the links the
/// corpus says are c2p, how many did we match?").
pub fn evaluate_against_corpus(
    inferred: &RelationshipMap,
    corpus: &ValidationCorpus,
) -> Vec<SourcePpv> {
    [
        ValidationSource::DirectReport,
        ValidationSource::Rpsl,
        ValidationSource::Communities,
    ]
    .into_iter()
    .map(|source| {
        let mut row = SourcePpv {
            source,
            c2p: (0, 0),
            p2p: (0, 0),
            unobserved: 0,
        };
        for a in corpus.from_source(source) {
            let Some(got) = inferred.get(a.link.a, a.link.b) else {
                row.unobserved += 1;
                continue;
            };
            match a.rel.kind() {
                RelationshipKind::C2p => {
                    row.c2p.1 += 1;
                    if got == a.rel {
                        row.c2p.0 += 1;
                    }
                }
                RelationshipKind::P2p => {
                    row.p2p.1 += 1;
                    if got.kind() == RelationshipKind::P2p {
                        row.p2p.0 += 1;
                    }
                }
                RelationshipKind::S2s => {}
            }
        }
        row
    })
    .collect()
}

/// Full-ground-truth scoring — what the paper could not do.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GroundTruthReport {
    /// (correct, total) over inferred c2p links that exist in the truth.
    pub c2p: (usize, usize),
    /// (correct, total) over inferred p2p links that exist in the truth.
    pub p2p: (usize, usize),
    /// Inferred links absent from the ground truth (artifact links).
    pub phantom_links: usize,
    /// True links never observed/classified (visibility gap).
    pub missed_links: usize,
    /// Confusion matrix: `confusion[truth][inferred]` over kinds
    /// (0 = c2p-correct-orientation, 1 = c2p-wrong-orientation,
    /// handled separately) — row/col order: c2p, p2p, s2s.
    pub confusion: [[usize; 3]; 3],
    /// Inferred c2p links whose orientation is reversed.
    pub reversed_c2p: usize,
}

impl GroundTruthReport {
    /// c2p PPV.
    pub fn c2p_ppv(&self) -> f64 {
        if self.c2p.1 == 0 {
            1.0
        } else {
            self.c2p.0 as f64 / self.c2p.1 as f64
        }
    }

    /// p2p PPV.
    pub fn p2p_ppv(&self) -> f64 {
        if self.p2p.1 == 0 {
            1.0
        } else {
            self.p2p.0 as f64 / self.p2p.1 as f64
        }
    }

    /// Fraction of true links the inference covered.
    pub fn coverage(&self) -> f64 {
        let classified = self.c2p.1 + self.p2p.1;
        let total = classified + self.missed_links;
        if total == 0 {
            1.0
        } else {
            classified as f64 / total as f64
        }
    }
}

fn kind_index(k: RelationshipKind) -> usize {
    match k {
        RelationshipKind::C2p => 0,
        RelationshipKind::P2p => 1,
        RelationshipKind::S2s => 2,
    }
}

/// Score an inference against complete ground truth.
pub fn evaluate_against_truth(
    inferred: &RelationshipMap,
    truth: &RelationshipMap,
) -> GroundTruthReport {
    let mut report = GroundTruthReport::default();
    for (link, got) in inferred.iter() {
        let Some(want) = truth.get(link.a, link.b) else {
            report.phantom_links += 1;
            continue;
        };
        report.confusion[kind_index(want.kind())][kind_index(got.kind())] += 1;
        match got.kind() {
            RelationshipKind::C2p => {
                report.c2p.1 += 1;
                if got == want {
                    report.c2p.0 += 1;
                } else if want.kind() == RelationshipKind::C2p {
                    report.reversed_c2p += 1;
                }
            }
            RelationshipKind::P2p => {
                report.p2p.1 += 1;
                if want.kind() == RelationshipKind::P2p {
                    report.p2p.0 += 1;
                }
            }
            RelationshipKind::S2s => {}
        }
    }
    for (link, _) in truth.iter() {
        if inferred.get(link.a, link.b).is_none() {
            report.missed_links += 1;
        }
    }
    report
}

/// PPV broken down by the structural classes of a link's endpoints —
/// where do the errors live? (The paper's error analysis localizes
/// mistakes near the edge and at peering-dense networks.)
pub fn ppv_by_class(
    inferred: &RelationshipMap,
    truth: &RelationshipMap,
    classes: &HashMap<Asn, AsClass>,
) -> Vec<(String, usize, usize)> {
    // (bucket label, correct, total), sorted by label.
    let mut buckets: HashMap<String, (usize, usize)> = HashMap::new();
    let label = |a: Asn, b: Asn| -> String {
        let name = |x: Asn| match classes.get(&x) {
            Some(AsClass::Tier1) => "tier1",
            Some(AsClass::LargeTransit) => "large",
            Some(AsClass::MidTransit) => "mid",
            Some(AsClass::SmallTransit) => "small",
            Some(AsClass::Content) => "content",
            Some(AsClass::Stub) => "stub",
            Some(AsClass::IxpRouteServer) => "ixp",
            None => "?",
        };
        let (mut x, mut y) = (name(a), name(b));
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        format!("{x}-{y}")
    };
    for (link, got) in inferred.iter() {
        let Some(want) = truth.get(link.a, link.b) else {
            continue;
        };
        let correct = match want.kind() {
            RelationshipKind::C2p => got == want,
            _ => got.kind() == want.kind(),
        };
        let e = buckets.entry(label(link.a, link.b)).or_default();
        e.1 += 1;
        if correct {
            e.0 += 1;
        }
    }
    let mut out: Vec<(String, usize, usize)> =
        buckets.into_iter().map(|(k, (c, t))| (k, c, t)).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::Assertion;

    fn truth() -> RelationshipMap {
        let mut t = RelationshipMap::new();
        t.insert_c2p(Asn(10), Asn(1));
        t.insert_c2p(Asn(20), Asn(1));
        t.insert_p2p(Asn(1), Asn(2));
        t.insert_p2p(Asn(10), Asn(20));
        t
    }

    #[test]
    fn ground_truth_scoring() {
        let t = truth();
        let mut inf = RelationshipMap::new();
        inf.insert_c2p(Asn(10), Asn(1)); // correct
        inf.insert_c2p(Asn(1), Asn(20)); // reversed orientation
        inf.insert_c2p(Asn(1), Asn(2)); // wrong kind (true p2p)
        inf.insert_p2p(Asn(10), Asn(20)); // correct
        inf.insert_p2p(Asn(5), Asn(6)); // phantom

        let r = evaluate_against_truth(&inf, &t);
        assert_eq!(r.c2p, (1, 3));
        assert_eq!(r.reversed_c2p, 1);
        assert_eq!(r.p2p, (1, 1));
        assert_eq!(r.phantom_links, 1);
        assert_eq!(r.missed_links, 0);
        assert!((r.c2p_ppv() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.p2p_ppv() - 1.0).abs() < 1e-12);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
        // Confusion: truth c2p inferred c2p twice (one reversed),
        // truth p2p inferred c2p once, truth p2p inferred p2p once.
        assert_eq!(r.confusion[0][0], 2);
        assert_eq!(r.confusion[1][0], 1);
        assert_eq!(r.confusion[1][1], 1);
    }

    #[test]
    fn missed_links_lower_coverage() {
        let t = truth();
        let mut inf = RelationshipMap::new();
        inf.insert_c2p(Asn(10), Asn(1));
        let r = evaluate_against_truth(&inf, &t);
        assert_eq!(r.missed_links, 3);
        assert!((r.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn corpus_scoring_groups_by_source() {
        let t = truth();
        let corpus = ValidationCorpus {
            assertions: vec![
                Assertion {
                    link: AsLink::new(Asn(10), Asn(1)),
                    rel: t.get(Asn(10), Asn(1)).unwrap(),
                    source: ValidationSource::DirectReport,
                },
                Assertion {
                    link: AsLink::new(Asn(1), Asn(2)),
                    rel: t.get(Asn(1), Asn(2)).unwrap(),
                    source: ValidationSource::Communities,
                },
                Assertion {
                    link: AsLink::new(Asn(7), Asn(8)), // never inferred
                    rel: LinkRel::P2p,
                    source: ValidationSource::Rpsl,
                },
            ],
        };
        let mut inf = RelationshipMap::new();
        inf.insert_c2p(Asn(10), Asn(1));
        inf.insert_p2p(Asn(1), Asn(2));

        let rows = evaluate_against_corpus(&inf, &corpus);
        let direct = rows
            .iter()
            .find(|r| r.source == ValidationSource::DirectReport)
            .unwrap();
        assert_eq!(direct.c2p, (1, 1));
        assert!((direct.c2p_ppv() - 1.0).abs() < 1e-12);
        let comm = rows
            .iter()
            .find(|r| r.source == ValidationSource::Communities)
            .unwrap();
        assert_eq!(comm.p2p, (1, 1));
        let rpsl = rows
            .iter()
            .find(|r| r.source == ValidationSource::Rpsl)
            .unwrap();
        assert_eq!(rpsl.unobserved, 1);
        assert!((rpsl.p2p_ppv() - 1.0).abs() < 1e-12, "empty bucket = 1.0");
    }

    #[test]
    fn class_breakdown_buckets_symmetrically() {
        let t = truth();
        let mut inf = RelationshipMap::new();
        inf.insert_c2p(Asn(10), Asn(1)); // correct
        inf.insert_c2p(Asn(1), Asn(2)); // wrong kind
        let mut classes = HashMap::new();
        classes.insert(Asn(1), AsClass::Tier1);
        classes.insert(Asn(2), AsClass::Tier1);
        classes.insert(Asn(10), AsClass::Stub);
        let rows = ppv_by_class(&inf, &t, &classes);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&("stub-tier1".to_string(), 1, 1)));
        assert!(rows.contains(&("tier1-tier1".to_string(), 0, 1)));
    }
}
