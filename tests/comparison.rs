//! The paper's comparative claim, as an executable assertion: on the
//! same observed paths, ASRank outperforms every baseline on c2p PPV,
//! and the baselines behave according to their documented weaknesses.

use asrank::baselines::{xia_gao_infer, Baseline, XiaGaoConfig};
use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::prelude::*;
use asrank::validation::evaluate_against_truth;

struct Scores {
    c2p_ppv: f64,
    p2p_ppv: f64,
}

fn score(rels: &RelationshipMap, truth: &RelationshipMap) -> Scores {
    let r = evaluate_against_truth(rels, truth);
    Scores {
        c2p_ppv: r.c2p_ppv(),
        p2p_ppv: r.p2p_ppv(),
    }
}

#[test]
fn asrank_beats_every_baseline_on_c2p() {
    let topo = generate(&TopologyConfig::small(), 42);
    let mut cfg = SimConfig::defaults(42);
    cfg.vp_selection = VpSelection::Count(30);
    let sim = simulate(&topo, &cfg);
    let truth = &topo.ground_truth.relationships;

    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let ours = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
    let our_score = score(&ours.relationships, truth);

    for b in Baseline::all() {
        let theirs = score(&b.run(&sim.paths), truth);
        assert!(
            our_score.c2p_ppv > theirs.c2p_ppv,
            "{} c2p PPV {:.3} should trail ASRank's {:.3}",
            b.name(),
            theirs.c2p_ppv,
            our_score.c2p_ppv
        );
    }
}

#[test]
fn seeding_helps_xia_gao() {
    let topo = generate(&TopologyConfig::small(), 17);
    let mut cfg = SimConfig::defaults(17);
    cfg.vp_selection = VpSelection::Count(25);
    let sim = simulate(&topo, &cfg);
    let truth = &topo.ground_truth.relationships;

    let unseeded = score(
        &xia_gao_infer(
            &sim.paths,
            &RelationshipMap::new(),
            &XiaGaoConfig::default(),
        ),
        truth,
    );

    // Seed with the true clique peering + the Tier-1s' customer links —
    // a plausible registry snapshot.
    let mut seed = RelationshipMap::new();
    let clique = topo.ground_truth.clique();
    for (i, &a) in clique.iter().enumerate() {
        for &b in &clique[i + 1..] {
            seed.insert_p2p(a, b);
        }
    }
    for &t1 in &clique {
        for c in truth.customers_of(t1) {
            seed.insert_c2p(c, t1);
        }
    }
    let seeded = score(
        &xia_gao_infer(&sim.paths, &seed, &XiaGaoConfig::default()),
        truth,
    );
    assert!(
        seeded.c2p_ppv >= unseeded.c2p_ppv,
        "seeding must not hurt c2p PPV ({:.3} vs {:.3})",
        seeded.c2p_ppv,
        unseeded.c2p_ppv
    );
}

#[test]
fn degree_heuristic_is_the_floor() {
    let topo = generate(&TopologyConfig::small(), 9);
    let mut cfg = SimConfig::defaults(9);
    cfg.vp_selection = VpSelection::Count(30);
    let sim = simulate(&topo, &cfg);
    let truth = &topo.ground_truth.relationships;

    let degree = score(&Baseline::Degree.run(&sim.paths), truth);
    let gao = score(&Baseline::Gao.run(&sim.paths), truth);
    // Gao uses path semantics; the blind degree heuristic should not
    // beat it on combined accuracy.
    let combined = |s: &Scores| s.c2p_ppv + s.p2p_ppv;
    assert!(
        combined(&gao) >= combined(&degree) - 0.05,
        "Gao {:.3}/{:.3} vs degree {:.3}/{:.3}",
        gao.c2p_ppv,
        gao.p2p_ppv,
        degree.c2p_ppv,
        degree.p2p_ppv
    );
}

#[test]
fn all_baselines_reach_minimum_sanity() {
    // Nobody should be catastrophically wrong on clean small data: c2p
    // PPV above 50% (coin flip on orientation) for every algorithm.
    let topo = generate(&TopologyConfig::small(), 4);
    let mut cfg = SimConfig::defaults(4);
    cfg.vp_selection = VpSelection::Count(30);
    let sim = simulate(&topo, &cfg);
    let truth = &topo.ground_truth.relationships;
    for b in Baseline::all() {
        let s = score(&b.run(&sim.paths), truth);
        assert!(
            s.c2p_ppv > 0.5,
            "{}: c2p PPV {:.3} below sanity floor",
            b.name(),
            s.c2p_ppv
        );
    }
}
