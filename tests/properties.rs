//! Workspace-level property tests (proptest): invariants that must hold
//! for *arbitrary* inputs, not just the scenarios we thought of.

use asrank::baselines::Baseline;
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::core::{sanitize, SanitizeConfig};
use asrank::mrt::{read_rib_dump, write_rib_dump, MrtReader};
use asrank::types::prelude::*;
use asrank::types::update::UpdateMessage;
use asrank::types::PrefixTrie;
use proptest::prelude::*;

/// Strategy: an arbitrary AS path of 2–8 public ASNs (possibly with
/// repeats, so loops and prepending occur).
fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(1u32..400, 2..8).prop_map(AsPath::from_u32s)
}

/// Strategy: an arbitrary path set with VP = first hop.
fn arb_pathset() -> impl Strategy<Value = PathSet> {
    prop::collection::vec((arb_path(), 0u32..200u32), 1..60).prop_map(|items| {
        items
            .into_iter()
            .map(|(path, pfx)| PathSample {
                vp: path.head().unwrap(),
                prefix: Ipv4Prefix::new(pfx << 12, 20).unwrap(),
                path,
            })
            .collect()
    })
}

proptest! {
    /// The sanitizer's output is always loop-free, prepending-free,
    /// routable, and ≥ 2 hops — regardless of input garbage.
    #[test]
    fn sanitizer_postconditions(ps in arb_pathset()) {
        let out = sanitize(&ps, &SanitizeConfig::default());
        for s in &out.samples {
            prop_assert!(!s.path.has_loop());
            prop_assert!(s.path.all_routable());
            prop_assert!(s.path.len() >= 2);
            prop_assert_eq!(s.path.compress_prepending().clone(), s.path.clone());
        }
        // Accounting adds up: every input is kept or counted discarded.
        let r = out.report;
        prop_assert_eq!(
            r.output_paths + r.discarded_loops + r.discarded_reserved + r.discarded_short,
            r.input_paths
        );
    }

    /// The pipeline classifies every link of every sanitized,
    /// non-poisoned path — totality of the classification.
    #[test]
    fn pipeline_classifies_observed_links(ps in arb_pathset()) {
        let inference = infer(&ps, &InferenceConfig::default());
        // Recompute what the pipeline should have seen.
        let clean = sanitize(&ps, &SanitizeConfig::default());
        let clique: std::collections::HashSet<Asn> =
            inference.clique.iter().copied().collect();
        'path: for p in clean.paths() {
            // Skip poisoned paths (clique sandwich), as S4 does.
            let mut seen = false;
            let mut gap = false;
            for a in p.iter() {
                if clique.contains(&a) {
                    if seen && gap { continue 'path; }
                    seen = true;
                    gap = false;
                } else if seen {
                    gap = true;
                }
            }
            for (a, b) in p.links() {
                prop_assert!(
                    inference.relationships.get(a, b).is_some(),
                    "unclassified link {}-{}", a, b
                );
            }
        }
    }

    /// MRT RIB dumps round-trip arbitrary path sets losslessly.
    #[test]
    fn mrt_rib_roundtrip(ps in arb_pathset()) {
        let mut buf = Vec::new();
        write_rib_dump(&ps, &mut buf, 1_000_000_000).unwrap();
        let back = read_rib_dump(&buf[..]).unwrap();
        let a: std::collections::HashSet<PathSample> = ps.iter().cloned().collect();
        let b: std::collections::HashSet<PathSample> = back.iter().cloned().collect();
        prop_assert_eq!(a, b);
    }

    /// The MRT decoder never panics on arbitrarily mutated valid dumps —
    /// every outcome is Ok or a typed error.
    #[test]
    fn mrt_decoder_never_panics(
        ps in arb_pathset(),
        flips in prop::collection::vec((0usize..10_000, 0u8..=255), 1..20),
    ) {
        let mut buf = Vec::new();
        write_rib_dump(&ps, &mut buf, 5).unwrap();
        for (pos, val) in flips {
            if !buf.is_empty() {
                let i = pos % buf.len();
                buf[i] = val;
            }
        }
        // Either parses or errors — never panics, never loops forever.
        let mut reader = MrtReader::new(&buf[..]);
        let mut guard = 0;
        while let Ok(Some(_)) = reader.next_record() {
            guard += 1;
            if guard > 10_000 { break; }
        }
    }

    /// Every baseline accepts arbitrary path sets without panicking and
    /// only emits links that exist in the input.
    #[test]
    fn baselines_total_and_sound(ps in arb_pathset()) {
        let mut observed: std::collections::HashSet<AsLink> =
            std::collections::HashSet::new();
        for p in ps.paths() {
            let c = p.compress_prepending();
            for (a, b) in c.links() {
                if a != b {
                    observed.insert(AsLink::new(a, b));
                }
            }
        }
        for b in Baseline::all() {
            let rels = b.run(&ps);
            for (link, _) in rels.iter() {
                prop_assert!(
                    observed.contains(&link),
                    "{} invented link {}", b.name(), link
                );
            }
        }
    }

    /// Recursive cones are monotone: a provider's cone contains each of
    /// its customers' cones.
    #[test]
    fn recursive_cone_monotone(edges in prop::collection::vec((1u32..60, 1u32..60), 1..80)) {
        let mut rels = RelationshipMap::new();
        for (c, p) in edges {
            if c != p {
                rels.insert_c2p(Asn(c), Asn(p));
            }
        }
        let cones = asrank::core::CustomerCones::recursive(&rels, None);
        for (customer, provider) in rels.c2p_pairs() {
            for m in cones.members(customer) {
                prop_assert!(
                    cones.contains(provider, *m),
                    "{} in cone({}) but not cone(provider {})",
                    m, customer, provider
                );
            }
        }
        // And every AS is in its own cone.
        for asn in cones.ases() {
            prop_assert!(cones.contains(asn, asn));
        }
    }

    /// The prefix trie agrees with a naive linear longest-prefix match.
    #[test]
    fn trie_matches_naive_lpm(
        entries in prop::collection::vec((0u32.., 8u8..=28), 1..40),
        queries in prop::collection::vec(0u32.., 20),
    ) {
        let entries: Vec<(Ipv4Prefix, usize)> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (addr, len))| (Ipv4Prefix::new(addr, len).unwrap(), i))
            .collect();
        // Later inserts win on duplicates, both in the trie and naively.
        let mut trie = PrefixTrie::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
        }
        let mut dedup: std::collections::HashMap<Ipv4Prefix, usize> =
            std::collections::HashMap::new();
        for (p, v) in &entries {
            dedup.insert(*p, *v);
        }
        for addr in queries {
            let naive = dedup
                .iter()
                .filter(|(p, _)| p.contains_addr(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (p.len(), *v));
            let got = trie.lookup_addr(addr).map(|(m, v)| (m.len(), *v));
            prop_assert_eq!(got, naive);
        }
    }

    /// BGP4MP update streams round-trip arbitrary update messages.
    #[test]
    fn update_stream_roundtrip(
        raw in prop::collection::vec(
            (1u32..1000, prop::collection::vec((0u32..50, 1u32..400), 0..10),
             prop::collection::vec(0u32..50, 0..6)),
            1..8,
        )
    ) {
        use std::collections::BTreeMap;
        // Build well-formed messages: unique VPs, sorted content,
        // announced paths starting at the VP.
        let mut by_vp: BTreeMap<u32, UpdateMessage> = BTreeMap::new();
        for (vp, ann, wd) in raw {
            let m = by_vp.entry(vp).or_insert_with(|| UpdateMessage {
                vp: Asn(vp),
                ..Default::default()
            });
            for (pfx, hop) in ann {
                m.announced.push((
                    Ipv4Prefix::new(pfx << 12, 20).unwrap(),
                    AsPath::from_u32s([vp, hop, hop + 1]),
                ));
            }
            for pfx in wd {
                m.withdrawn.push(Ipv4Prefix::new((pfx + 100) << 12, 20).unwrap());
            }
        }
        let mut updates: Vec<UpdateMessage> = by_vp.into_values().collect();
        for m in &mut updates {
            m.withdrawn.sort();
            m.withdrawn.dedup();
            m.announced.sort_by_key(|(p, _)| *p);
            m.announced.dedup_by_key(|(p, _)| *p);
        }
        updates.retain(|m| !m.is_empty());
        prop_assume!(!updates.is_empty());

        let mut buf = Vec::new();
        asrank::mrt::write_update_stream(&updates, &mut buf, 0).unwrap();
        let back = asrank::mrt::read_update_stream(&buf[..]).unwrap();
        prop_assert_eq!(back, updates);
    }

    /// Sanitization is idempotent: cleaning already-clean data is a
    /// no-op with all-zero discard counters.
    #[test]
    fn sanitize_idempotent(ps in arb_pathset()) {
        let once = sanitize(&ps, &SanitizeConfig::default());
        let as_set: PathSet = once.samples.iter().cloned().collect();
        let twice = sanitize(&as_set, &SanitizeConfig::default());
        prop_assert_eq!(&twice.samples, &once.samples);
        prop_assert_eq!(twice.report.discarded_loops, 0);
        prop_assert_eq!(twice.report.discarded_reserved, 0);
        prop_assert_eq!(twice.report.discarded_short, 0);
        prop_assert_eq!(twice.report.compressed_prepending, 0);
    }

    /// The CAIDA as-rel text format round-trips arbitrary relationship
    /// maps exactly.
    #[test]
    fn as_rel_roundtrip(edges in prop::collection::vec((1u32..500, 1u32..500, 0u8..3), 0..100)) {
        let mut rels = RelationshipMap::new();
        for (a, b, kind) in edges {
            if a == b {
                continue;
            }
            match kind {
                0 => rels.insert_c2p(Asn(a), Asn(b)),
                1 => rels.insert_p2p(Asn(a), Asn(b)),
                _ => rels.insert_s2s(Asn(a), Asn(b)),
            }
        }
        let mut buf = Vec::new();
        asrank::core::write_as_rel(&rels, &mut buf).unwrap();
        let back = asrank::core::read_as_rel(&buf[..]).unwrap();
        let mut la: Vec<_> = rels.iter().collect();
        let mut lb: Vec<_> = back.iter().collect();
        la.sort_by_key(|(l, _)| (l.a, l.b));
        lb.sort_by_key(|(l, _)| (l.a, l.b));
        prop_assert_eq!(la, lb);
    }

    /// Relationship-map diffs are exact inverses: applying the diff's
    /// added/removed/changed to the old map reproduces the new map.
    #[test]
    fn diff_reconstructs_new_map(
        old_edges in prop::collection::vec((1u32..60, 1u32..60, 0u8..2), 0..50),
        new_edges in prop::collection::vec((1u32..60, 1u32..60, 0u8..2), 0..50),
    ) {
        let build = |edges: &[(u32, u32, u8)]| {
            let mut m = RelationshipMap::new();
            for &(a, b, k) in edges {
                if a == b { continue; }
                if k == 0 { m.insert_c2p(Asn(a), Asn(b)); } else { m.insert_p2p(Asn(a), Asn(b)); }
            }
            m
        };
        let old = build(&old_edges);
        let new = build(&new_edges);
        let d = asrank::core::diff_relationships(&old, &new);

        let mut rebuilt = old.clone();
        for (l, _) in &d.removed {
            rebuilt.remove(l.a, l.b);
        }
        let apply = |m: &mut RelationshipMap, l: AsLink, r: asrank::types::LinkRel| {
            use asrank::types::LinkRel::*;
            match r {
                AC2pB => m.insert_c2p(l.a, l.b),
                AP2cB => m.insert_c2p(l.b, l.a),
                P2p => m.insert_p2p(l.a, l.b),
                S2s => m.insert_s2s(l.a, l.b),
            }
        };
        for &(l, r) in &d.added {
            apply(&mut rebuilt, l, r);
        }
        for c in &d.changed {
            apply(&mut rebuilt, c.link, c.after);
        }
        let mut la: Vec<_> = rebuilt.iter().collect();
        let mut lb: Vec<_> = new.iter().collect();
        la.sort_by_key(|(l, _)| (l.a, l.b));
        lb.sort_by_key(|(l, _)| (l.a, l.b));
        prop_assert_eq!(la, lb);
    }
}
