//! Integration: routing events, update-stream derivation, and BGP4MP
//! serialization across crates.

use asrank::bgpsim::{simulate, simulate_event, RoutingEvent, SimConfig, VpSelection};
use asrank::mrt::{read_update_stream, write_update_stream};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::prelude::*;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::defaults(seed);
    c.vp_selection = VpSelection::Count(10);
    c.full_feed_fraction = 1.0;
    c
}

#[test]
fn tier1_depeering_causes_reroutes_not_chaos() {
    let topo = generate(&TopologyConfig::small(), 5);
    let clique = topo.ground_truth.clique();
    let (before, after, updates) = simulate_event(
        &topo,
        RoutingEvent::LinkDown {
            a: clique[0],
            b: clique[1],
        },
        &cfg(5),
    );
    // The RIBs must agree on VP sets (pinned selection).
    assert_eq!(before.paths.vantage_points(), after.paths.vantage_points());
    // Churn happens but stays bounded: most of the table is unaffected.
    let churn: usize = updates.iter().map(|m| m.churn()).sum();
    assert!(churn > 0, "a Tier-1 depeering must be visible");
    assert!(
        churn < before.paths.len() / 2,
        "churn {churn} exceeds half the table ({})",
        before.paths.len()
    );
    // Re-announced paths avoid the severed link.
    for m in &updates {
        for (_, path) in &m.announced {
            for (x, y) in path.links() {
                let severed =
                    (x == clique[0] && y == clique[1]) || (x == clique[1] && y == clique[0]);
                assert!(!severed, "severed link still in announced path {path}");
            }
        }
    }
}

#[test]
fn update_stream_file_roundtrip_via_bgp4mp() {
    let topo = generate(&TopologyConfig::tiny(), 9);
    let victim = *topo.ground_truth.prefixes.keys().min().unwrap();
    let (_b, _a, updates) =
        simulate_event(&topo, RoutingEvent::OriginDown { asn: victim }, &cfg(9));
    let mut buf = Vec::new();
    let records = write_update_stream(&updates, &mut buf, 1_000).unwrap();
    assert!(records >= updates.len() as u64);
    let back = read_update_stream(&buf[..]).unwrap();
    assert_eq!(back, updates);
}

#[test]
fn rib_plus_updates_reconstructs_post_event_table() {
    // The operational use of update streams: applying them to the old
    // RIB must yield the new RIB.
    let topo = generate(&TopologyConfig::tiny(), 13);
    let clique = topo.ground_truth.clique();
    let (before, after, updates) = simulate_event(
        &topo,
        RoutingEvent::LinkDown {
            a: clique[0],
            b: clique[1],
        },
        &cfg(13),
    );

    // Index before-RIB, apply updates.
    let mut table: std::collections::HashMap<(Asn, Ipv4Prefix), AsPath> = before
        .paths
        .iter()
        .map(|s| ((s.vp, s.prefix), s.path.clone()))
        .collect();
    for m in &updates {
        for p in &m.withdrawn {
            table.remove(&(m.vp, *p));
        }
        for (p, path) in &m.announced {
            table.insert((m.vp, *p), path.clone());
        }
    }
    let reconstructed: std::collections::HashSet<PathSample> = table
        .into_iter()
        .map(|((vp, prefix), path)| PathSample { vp, prefix, path })
        .collect();
    let actual: std::collections::HashSet<PathSample> = after.paths.iter().cloned().collect();
    assert_eq!(reconstructed, actual);
}

#[test]
fn simulate_is_pure_with_respect_to_events() {
    // apply_event must not mutate the input topology.
    let topo = generate(&TopologyConfig::tiny(), 21);
    let links_before = topo.ground_truth.link_count();
    let clique = topo.ground_truth.clique();
    let _ = asrank::bgpsim::apply_event(
        &topo,
        RoutingEvent::LinkDown {
            a: clique[0],
            b: clique[1],
        },
    );
    assert_eq!(topo.ground_truth.link_count(), links_before);
    // And two identical sims agree despite the event machinery existing.
    let a = simulate(&topo, &cfg(21));
    let b = simulate(&topo, &cfg(21));
    assert_eq!(a.paths.len(), b.paths.len());
}
