//! Cross-crate integration: the complete reproduction chain at small
//! scale, across seeds, including the MRT interchange path.

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::cone::ConeSets;
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::core::{sanitize, SanitizeConfig};
use asrank::mrt::{read_rib_dump, write_rib_dump};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::prelude::*;
use asrank::validation::{
    build_corpus, evaluate_against_corpus, evaluate_against_truth, CorpusConfig,
};

fn chain(
    seed: u64,
) -> (
    asrank::topology::GeneratedTopology,
    asrank::bgpsim::SimOutput,
    asrank::core::Inference,
) {
    let topo = generate(&TopologyConfig::small(), seed);
    let mut cfg = SimConfig::defaults(seed);
    cfg.vp_selection = VpSelection::Count(30);
    let sim = simulate(&topo, &cfg);
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
    (topo, sim, inference)
}

#[test]
fn accuracy_floors_hold_across_seeds() {
    for seed in [1u64, 77, 2013] {
        let (topo, _sim, inference) = chain(seed);
        let r = evaluate_against_truth(&inference.relationships, &topo.ground_truth.relationships);
        assert!(
            r.c2p_ppv() > 0.95,
            "seed {seed}: c2p PPV {:.3} too low",
            r.c2p_ppv()
        );
        assert!(
            r.p2p_ppv() > 0.6,
            "seed {seed}: p2p PPV {:.3} too low",
            r.p2p_ppv()
        );
        assert!(
            r.coverage() > 0.7,
            "seed {seed}: coverage {:.3} too low",
            r.coverage()
        );
        assert_eq!(r.phantom_links, 0, "clean sim must not invent links");
        assert_eq!(inference.report.cycle_links, 0, "no c2p cycles expected");
    }
}

#[test]
fn corpus_ppv_beats_corpus_error() {
    // The inference should be *more* accurate than the noisy corpora
    // suggest: its PPV against a source is bounded below by roughly
    // (1 - corpus error) when the inference is near-perfect.
    let (topo, _sim, inference) = chain(5);
    let corpus = build_corpus(&topo.ground_truth, &CorpusConfig::paper_like(5));
    let rows = evaluate_against_corpus(&inference.relationships, &corpus);
    let direct = rows
        .iter()
        .find(|r| r.source.name() == "direct")
        .expect("direct row");
    assert!(
        direct.c2p_ppv() > 0.95,
        "direct-report c2p PPV {:.3}",
        direct.c2p_ppv()
    );
}

#[test]
fn mrt_interchange_preserves_inference() {
    let (topo, sim, inference) = chain(11);
    let mut buf = Vec::new();
    write_rib_dump(&sim.paths, &mut buf, 1_365_000_000).expect("write");
    let reread = read_rib_dump(&buf[..]).expect("read");
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let again = infer(&reread, &InferenceConfig::with_ixps(ixps));
    let mut a: Vec<_> = inference.relationships.iter().collect();
    let mut b: Vec<_> = again.relationships.iter().collect();
    a.sort_by_key(|(l, _)| (l.a, l.b));
    b.sort_by_key(|(l, _)| (l.a, l.b));
    assert_eq!(a, b);
}

#[test]
fn cone_definitions_nest_on_clean_data() {
    let (topo, sim, inference) = chain(23);
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let clean = sanitize(&sim.paths, &SanitizeConfig::with_ixps(ixps));
    let cones = ConeSets::compute(&clean, &inference.relationships, None);
    // BGP-observed ⊆ recursive holds unconditionally (observed descents
    // use exactly the p2c links whose closure is the recursive cone).
    for asn in cones.bgp_observed.ases() {
        for m in cones.bgp_observed.members(asn) {
            assert!(
                cones.recursive.contains(asn, *m),
                "{m} in bgp-observed but not recursive cone of {asn}"
            );
        }
    }
    // provider/peer-observed ⊆ bgp-observed only holds when every link
    // of every witnessed descent was inferred correctly; with imperfect
    // inference a mid-chain misclassification breaks the chain for the
    // BGP-observed definition but not for the announcement-based one
    // (the paper's definitions diverge the same way). Require strong
    // overlap rather than strict nesting.
    let (mut inside, mut total) = (0usize, 0usize);
    for asn in cones.provider_peer_observed.ases() {
        for m in cones.provider_peer_observed.members(asn) {
            total += 1;
            if cones.recursive.contains(asn, *m) {
                inside += 1;
            }
        }
    }
    assert!(
        inside as f64 > 0.9 * total as f64,
        "pp-observed cones stray too far from recursive: {inside}/{total}"
    );
}

#[test]
fn recursive_cone_matches_ground_truth_for_correct_inference() {
    // Where the inference is perfect (use ground truth directly), the
    // recursive cone must equal the true customer cone.
    let topo = generate(&TopologyConfig::tiny(), 3);
    let cones = asrank::core::CustomerCones::recursive(&topo.ground_truth.relationships, None);
    for &asn in topo.ground_truth.classes.keys() {
        let truth = topo.ground_truth.true_customer_cone(asn);
        let got: std::collections::HashSet<Asn> = cones.members(asn).iter().copied().collect();
        // IXP route servers have no links, hence trivial cones on both
        // sides — handled by the default.
        if got.is_empty() {
            assert_eq!(truth.len(), 1);
            continue;
        }
        assert_eq!(got, truth, "cone mismatch for {asn}");
    }
}

#[test]
fn vp_count_improves_p2p_visibility() {
    let topo = generate(&TopologyConfig::small(), 31);
    let truth = &topo.ground_truth.relationships;
    let run = |vps: usize| {
        let sim = simulate(
            &topo,
            &SimConfig {
                vp_selection: VpSelection::Count(vps),
                full_feed_fraction: 0.4,
                anomalies: Default::default(),
                destination_sample: None,
                rib_cap_per_vp: None,
                threads: 0,
                seed: 31,
            },
        );
        let inference = infer(&sim.paths, &InferenceConfig::default());
        let r = evaluate_against_truth(&inference.relationships, truth);
        r.confusion[1].iter().sum::<usize>() // true-p2p links classified
    };
    let few = run(4);
    let many = run(60);
    assert!(
        many > few,
        "more VPs must surface more peering links ({few} → {many})"
    );
}
