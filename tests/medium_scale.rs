//! Medium-scale (10k-AS) end-to-end check. Ignored by default — run with
//! `cargo test --release -- --ignored` (takes ~1 minute).

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::Asn;
use asrank::validation::evaluate_against_truth;

#[test]
#[ignore = "slow; run explicitly with --ignored --release"]
fn medium_scale_accuracy() {
    let topo = generate(&TopologyConfig::medium(), 42);
    let sim = simulate(
        &topo,
        &SimConfig {
            vp_selection: VpSelection::Count(120),
            full_feed_fraction: 116.0 / 315.0,
            anomalies: Default::default(),
            destination_sample: Some(4_000),
            rib_cap_per_vp: None,
            threads: 0,
            seed: 42,
        },
    );
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
    let truth = topo.ground_truth.clique();
    assert_eq!(inference.clique, truth, "clique must be exact at scale");
    let r = evaluate_against_truth(&inference.relationships, &topo.ground_truth.relationships);
    assert!(r.c2p_ppv() > 0.98, "c2p PPV {:.3}", r.c2p_ppv());
    assert!(r.p2p_ppv() > 0.8, "p2p PPV {:.3}", r.p2p_ppv());
    assert_eq!(r.phantom_links, 0);
}
