//! Longitudinal study: evolve a topology through snapshots (population
//! growth + spreading peering), re-run the full inference on each
//! snapshot's simulated BGP view, and track the paper's "flattening"
//! signals: the largest customer cones' share of the Internet and the
//! peering share of links.
//!
//! ```text
//! cargo run --release --example longitudinal
//! ```

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::cone::CustomerCones;
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::topology::{evolve, EvolutionConfig};
use asrank::types::Asn;

fn main() {
    let seed = 99;
    let mut cfg = EvolutionConfig::small();
    cfg.steps = 8;
    let snapshots = evolve(&cfg, seed);

    println!(
        "{:<9} {:>6} {:>7} {:>10} {:>14} {:>11} {:>9}",
        "snapshot", "ASes", "links", "p2p share", "largest cone", "cone share", "c2p PPV"
    );
    for (i, snap) in snapshots.iter().enumerate() {
        // Simulate a collection over this snapshot and infer.
        let sim = simulate(
            snap,
            &SimConfig {
                vp_selection: VpSelection::Count(30),
                full_feed_fraction: 0.4,
                anomalies: Default::default(),
                destination_sample: None,
                rib_cap_per_vp: None,
                threads: 0,
                seed: seed + i as u64,
            },
        );
        let ixps: Vec<Asn> = snap.ixps.iter().map(|x| x.route_server).collect();
        let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));

        let gt = asrank::validation::evaluate_against_truth(
            &inference.relationships,
            &snap.ground_truth.relationships,
        );

        let (c2p, p2p, _) = snap.ground_truth.relationships.counts();
        let cones = CustomerCones::recursive(&inference.relationships, None);
        let (top, size) = cones.largest().expect("non-empty");
        println!(
            "{:<9} {:>6} {:>7} {:>9.1}% {:>8}: {:<5} {:>10.1}% {:>8.1}%",
            i,
            snap.ground_truth.as_count(),
            snap.ground_truth.link_count(),
            100.0 * p2p as f64 / (c2p + p2p) as f64,
            top.to_string(),
            size.ases,
            100.0 * size.ases as f64 / snap.ground_truth.as_count() as f64,
            100.0 * gt.c2p_ppv(),
        );
    }
    println!(
        "\nexpected shape (paper): the p2p share of links rises over time \
         and the largest cone's share of the AS population declines — the \
         Internet flattens."
    );
}
