//! Internet-scale run: a ~42 000-AS topology shaped like the April 2013
//! Internet the paper measured, with 315 vantage points and the paper's
//! full-feed share. Destination sampling keeps the propagation tractable
//! on a laptop while preserving path structure.
//!
//! ```text
//! cargo run --release --example internet_scale
//! ```

use asrank::bgpsim::{simulate, AnomalyConfig, SimConfig, VpSelection};
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::{AsClass, Asn};
use asrank::validation::evaluate_against_truth;
use std::time::Instant;

fn main() {
    let seed = 413; // April 2013

    let t0 = Instant::now();
    let topo = generate(&TopologyConfig::internet_2013(), seed);
    println!(
        "generated {} ASes / {} links / {} prefixes in {:.1?}",
        topo.ground_truth.as_count(),
        topo.ground_truth.link_count(),
        topo.ground_truth.prefix_count(),
        t0.elapsed()
    );
    let stubs = topo.ground_truth.ases_of_class(AsClass::Stub).len();
    println!(
        "stub share: {:.1}% (paper: ~85%)",
        100.0 * stubs as f64 / topo.ground_truth.as_count() as f64
    );

    // Paper-scale collection with realistic artifacts.
    let t1 = Instant::now();
    let clique = topo.ground_truth.clique();
    let sim = simulate(
        &topo,
        &SimConfig {
            vp_selection: VpSelection::Count(315),
            full_feed_fraction: 116.0 / 315.0,
            anomalies: AnomalyConfig::realistic(clique.clone()),
            destination_sample: Some(6_000),
            rib_cap_per_vp: None,
            threads: 0,
            seed,
        },
    );
    println!(
        "simulated {} destinations → {} RIB entries ({} distinct paths) in {:.1?}",
        sim.stats.destinations,
        sim.paths.len(),
        sim.paths.distinct_paths().len(),
        t1.elapsed()
    );
    println!(
        "artifacts injected: {} prepended, {} poisoned, {} with RS ASNs",
        sim.stats.anomalies.prepended_paths,
        sim.stats.anomalies.poisoned_paths,
        sim.stats.anomalies.rs_inserted_paths,
    );

    let t2 = Instant::now();
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
    println!(
        "\ninference in {:.1?}: {} links classified",
        t2.elapsed(),
        inference.report.total_links
    );
    println!("report: {:#?}", inference.report);

    // Clique accuracy.
    let hit = inference
        .clique
        .iter()
        .filter(|a| clique.contains(a))
        .count();
    println!(
        "clique: inferred {} / true {} / correct {}",
        inference.clique.len(),
        clique.len(),
        hit
    );

    // Scoring against full ground truth.
    let gt = evaluate_against_truth(&inference.relationships, &topo.ground_truth.relationships);
    println!(
        "\nc2p PPV {:.2}% (n={})   p2p PPV {:.2}% (n={})   coverage {:.1}%",
        gt.c2p_ppv() * 100.0,
        gt.c2p.1,
        gt.p2p_ppv() * 100.0,
        gt.p2p.1,
        gt.coverage() * 100.0,
    );
    println!(
        "paper headline for comparison: 99.6% c2p / 98.7% p2p (against its \
         validation corpus)"
    );
}
