//! Quickstart: the whole reproduction on a ~1000-AS Internet, in five
//! steps — generate, simulate, infer, compute cones, validate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::cone::ConeSets;
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::core::{rank_ases, sanitize, SanitizeConfig};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::Asn;
use asrank::validation::{
    build_corpus, evaluate_against_corpus, evaluate_against_truth, CorpusConfig,
};

fn main() {
    let seed = 2013; // the paper's year, why not

    // 1. Generate a small Internet with known business relationships.
    let topo = generate(&TopologyConfig::small(), seed);
    println!(
        "topology: {} ASes, {} links, {} prefixes, Tier-1 clique {:?}",
        topo.ground_truth.as_count(),
        topo.ground_truth.link_count(),
        topo.ground_truth.prefix_count(),
        topo.ground_truth.clique(),
    );

    // 2. Simulate BGP under Gao-Rexford policies; collect RIBs at 30
    //    degree-biased vantage points.
    let mut sim_cfg = SimConfig::defaults(seed);
    sim_cfg.vp_selection = VpSelection::Count(30);
    let sim = simulate(&topo, &sim_cfg);
    println!(
        "simulated: {} RIB entries, {} distinct paths from {} VPs",
        sim.paths.len(),
        sim.paths.distinct_paths().len(),
        sim.vps.len(),
    );

    // 3. Run the ASRank inference pipeline (IXP ASNs known, as in the
    //    paper's IXP list).
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps.clone()));
    let (c2p, p2p, s2s) = inference.relationships.counts();
    println!(
        "inferred: {c2p} c2p, {p2p} p2p, {s2s} s2s; clique {:?}",
        inference.clique
    );

    // 4. Customer cones (all three definitions) and the AS ranking.
    let clean = sanitize(&sim.paths, &SanitizeConfig::with_ixps(ixps));
    let cones = ConeSets::compute(
        &clean,
        &inference.relationships,
        Some(&topo.ground_truth.prefixes),
    );
    println!("\ntop 5 ASes by customer cone:");
    for row in rank_ases(&cones.recursive, &inference.degrees)
        .iter()
        .take(5)
    {
        println!(
            "  #{} {}  cone: {} ASes / {} prefixes / {} addrs  (transit degree {})",
            row.rank,
            row.asn,
            row.cone.ases,
            row.cone.prefixes,
            row.cone.addresses,
            row.transit_degree,
        );
    }

    // 5. Validate — against emulated corpora (as the paper did) and
    //    against the full ground truth (as only a simulation can).
    let corpus = build_corpus(&topo.ground_truth, &CorpusConfig::paper_like(seed));
    println!("\nPPV against emulated validation sources:");
    for row in evaluate_against_corpus(&inference.relationships, &corpus) {
        println!(
            "  {:12} c2p {:5.1}% (n={})   p2p {:5.1}% (n={})",
            row.source.name(),
            row.c2p_ppv() * 100.0,
            row.c2p.1,
            row.p2p_ppv() * 100.0,
            row.p2p.1,
        );
    }
    let gt = evaluate_against_truth(&inference.relationships, &topo.ground_truth.relationships);
    println!(
        "\nagainst full ground truth: c2p PPV {:.1}%  p2p PPV {:.1}%  coverage {:.1}%",
        gt.c2p_ppv() * 100.0,
        gt.p2p_ppv() * 100.0,
        gt.coverage() * 100.0,
    );
}
