//! MRT round trip: simulate a collection, export it as a standards-shaped
//! TABLE_DUMP_V2 RIB dump (RFC 6396), read the file back, and verify the
//! inference pipeline produces identical relationships from the re-read
//! data — i.e. the codec is a faithful interchange format, exactly how
//! the original system consumed RouteViews files.
//!
//! ```text
//! cargo run --release --example mrt_roundtrip
//! ```

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::mrt::{read_rib_dump, write_rib_dump};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::Asn;

fn main() {
    let seed = 7;
    let topo = generate(&TopologyConfig::small(), seed);
    let mut cfg = SimConfig::defaults(seed);
    cfg.vp_selection = VpSelection::Count(20);
    let sim = simulate(&topo, &cfg);

    // Export to a temp .mrt file.
    let path = std::env::temp_dir().join("asrank_example_rib.mrt");
    let file = std::fs::File::create(&path).expect("create dump file");
    let records = write_rib_dump(&sim.paths, std::io::BufWriter::new(file), 1_365_000_000)
        .expect("write dump");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} MRT records ({} RIB entries, {:.1} MiB) to {}",
        records,
        sim.paths.len(),
        bytes as f64 / (1024.0 * 1024.0),
        path.display()
    );

    // Read it back.
    let file = std::fs::File::open(&path).expect("open dump file");
    let reread = read_rib_dump(std::io::BufReader::new(file)).expect("read dump");
    println!(
        "re-read {} RIB entries, {} VPs, {} prefixes",
        reread.len(),
        reread.vantage_points().len(),
        reread.prefixes().len()
    );
    assert_eq!(reread.len(), sim.paths.len(), "lossless round trip");

    // The pipeline must produce identical relationships from either copy.
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    let a = infer(&sim.paths, &InferenceConfig::with_ixps(ixps.clone()));
    let b = infer(&reread, &InferenceConfig::with_ixps(ixps));
    let mut la: Vec<_> = a.relationships.iter().collect();
    let mut lb: Vec<_> = b.relationships.iter().collect();
    la.sort_by_key(|(l, _)| (l.a, l.b));
    lb.sort_by_key(|(l, _)| (l.a, l.b));
    assert_eq!(la, lb, "inference must not depend on the storage format");
    println!(
        "inference from the .mrt file matches the in-memory inference: \
         {} links, clique {:?}",
        b.relationships.len(),
        b.clique
    );

    let _ = std::fs::remove_file(&path);
}
