//! Depeering study: sever the peering between two Tier-1s — the kind of
//! dispute (Cogent/Level3, Sprint/Cogent…) that motivated relationship
//! inference in the first place — derive the BGP update storm every
//! vantage point would emit, serialize it as a BGP4MP stream, and
//! measure the churn and path inflation the event causes.
//!
//! ```text
//! cargo run --release --example depeering
//! ```

use asrank::bgpsim::{simulate_event, RoutingEvent, SimConfig, VpSelection};
use asrank::mrt::{read_update_stream, write_update_stream};
use asrank::topology::{generate, TopologyConfig};

fn main() {
    let seed = 777;
    let topo = generate(&TopologyConfig::small(), seed);
    let clique = topo.ground_truth.clique();
    let (a, b) = (clique[0], clique[1]);
    println!("depeering event: severing the {a} ↔ {b} Tier-1 peering\n");

    let mut cfg = SimConfig::defaults(seed);
    cfg.vp_selection = VpSelection::Count(25);
    cfg.full_feed_fraction = 1.0;
    let (before, after, updates) = simulate_event(&topo, RoutingEvent::LinkDown { a, b }, &cfg);

    // Churn statistics.
    let announced: usize = updates.iter().map(|m| m.announced.len()).sum();
    let withdrawn: usize = updates.iter().map(|m| m.withdrawn.len()).sum();
    println!(
        "update storm: {} VPs affected, {announced} re-announcements, {withdrawn} withdrawals",
        updates.len()
    );

    // Path inflation: average length before vs after, over re-announced
    // prefixes.
    let mut before_len = 0usize;
    let mut after_len = 0usize;
    let mut n = 0usize;
    let old: std::collections::HashMap<_, _> = before
        .paths
        .iter()
        .map(|s| ((s.vp, s.prefix), s.path.len()))
        .collect();
    for m in &updates {
        for (prefix, path) in &m.announced {
            if let Some(&ol) = old.get(&(m.vp, *prefix)) {
                before_len += ol;
                after_len += path.len();
                n += 1;
            }
        }
    }
    if n > 0 {
        println!(
            "path inflation on rerouted prefixes: {:.2} → {:.2} hops (n={n})",
            before_len as f64 / n as f64,
            after_len as f64 / n as f64
        );
    }

    // Unreachability: prefixes some VP lost entirely.
    println!(
        "reachability: {} → {} unreachable (VP, destination) pairs",
        before.stats.unreachable_pairs, after.stats.unreachable_pairs
    );

    // Serialize the storm as a BGP4MP stream and read it back.
    let path = std::env::temp_dir().join("asrank_depeering_updates.mrt");
    let file = std::fs::File::create(&path).expect("create update file");
    let records = write_update_stream(&updates, std::io::BufWriter::new(file), 1_366_000_000)
        .expect("write updates");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "\nwrote {records} BGP4MP records ({:.1} KiB) to {}",
        bytes as f64 / 1024.0,
        path.display()
    );
    let file = std::fs::File::open(&path).expect("open update file");
    let reread = read_update_stream(std::io::BufReader::new(file)).expect("read updates");
    assert_eq!(reread, updates, "update stream must round-trip losslessly");
    println!("re-read {} update messages: lossless ✓", reread.len());
    let _ = std::fs::remove_file(&path);
}
