//! Run the ASRank pipeline on a *real* MRT RIB file.
//!
//! ```text
//! cargo run --release --example real_data -- /path/to/rib.mrt [ixp_asns.txt]
//! ```
//!
//! The codec understands RouteViews/RIS `TABLE_DUMP_V2` dumps and legacy
//! pre-2008 `TABLE_DUMP` archives (2-byte ASNs), so a file downloaded
//! from archive.routeviews.org drops straight in — the exact ingest path
//! of the original system. Without an argument, the example synthesizes
//! a dump first so it is runnable offline, then treats it as foreign
//! data (nothing from the generator is reused).

use asrank::core::cone::ConeSets;
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::core::{rank_ases, sanitize, write_as_rel};
use asrank::mrt::read_rib_dump;
use asrank::types::Asn;

fn synthesize(path: &std::path::Path) {
    use asrank::bgpsim::{simulate, SimConfig, VpSelection};
    use asrank::mrt::write_rib_dump;
    use asrank::topology::{generate, TopologyConfig};
    let topo = generate(&TopologyConfig::small(), 1);
    let mut cfg = SimConfig::defaults(1);
    cfg.vp_selection = VpSelection::Count(25);
    let sim = simulate(&topo, &cfg);
    let file = std::fs::File::create(path).expect("create synthetic dump");
    write_rib_dump(&sim.paths, std::io::BufWriter::new(file), 1_365_000_000)
        .expect("write synthetic dump");
    println!(
        "(no input given: synthesized {} with {} RIB entries)",
        path.display(),
        sim.paths.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rib_path = match args.first() {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let p = std::env::temp_dir().join("asrank_example_real.mrt");
            synthesize(&p);
            p
        }
    };

    // Optional IXP route-server ASN list, one ASN per line.
    let ixps: Vec<Asn> = args
        .get(1)
        .map(|f| {
            std::fs::read_to_string(f)
                .expect("read IXP list")
                .lines()
                .filter_map(|l| l.trim().parse::<u32>().ok().map(Asn))
                .collect()
        })
        .unwrap_or_default();

    let file = std::fs::File::open(&rib_path).expect("open RIB file");
    let paths = read_rib_dump(std::io::BufReader::new(file)).expect("parse MRT");
    println!(
        "loaded {}: {} RIB entries, {} VPs, {} prefixes, {} ASes",
        rib_path.display(),
        paths.len(),
        paths.vantage_points().len(),
        paths.prefixes().len(),
        paths.ases().len()
    );

    let cfg = InferenceConfig::with_ixps(ixps.clone());
    let inference = infer(&paths, &cfg);
    let (c2p, p2p, s2s) = inference.relationships.counts();
    println!(
        "inferred {c2p} c2p / {p2p} p2p / {s2s} s2s; clique {:?}",
        inference.clique
    );
    println!(
        "sanitized: {} → {} paths ({} loops, {} prepending-compressed)",
        inference.report.sanitize.input_paths,
        inference.report.sanitize.output_paths,
        inference.report.sanitize.discarded_loops,
        inference.report.sanitize.compressed_prepending,
    );

    // Rank and export, exactly like the public artifact.
    let clean = sanitize(&paths, &cfg.sanitize);
    let cones = ConeSets::compute(&clean, &inference.relationships, None);
    println!("\ntop 10 by customer cone:");
    for row in rank_ases(&cones.recursive, &inference.degrees)
        .iter()
        .take(10)
    {
        println!(
            "  #{:<3} {:<10} cone {:>6} ASes   transit degree {:>5}",
            row.rank,
            row.asn.to_string(),
            row.cone.ases,
            row.transit_degree
        );
    }

    let out = rib_path.with_extension("as-rel.txt");
    let f = std::fs::File::create(&out).expect("create as-rel output");
    let n =
        write_as_rel(&inference.relationships, std::io::BufWriter::new(f)).expect("write as-rel");
    println!("\nwrote {n} relationships to {}", out.display());
}
