//! Vantage-point sensitivity: how inference quality scales with the
//! number of VPs — the paper's visibility argument made quantitative.
//! Peering links are only visible from inside the peers' cones, so p2p
//! recall climbs steeply with VP count while c2p saturates early.
//!
//! ```text
//! cargo run --release --example vp_sensitivity
//! ```

use asrank::bgpsim::{simulate, SimConfig, VpSelection};
use asrank::core::pipeline::{infer, InferenceConfig};
use asrank::topology::{generate, TopologyConfig};
use asrank::types::Asn;
use asrank::validation::evaluate_against_truth;

fn main() {
    let seed = 21;
    let topo = generate(&TopologyConfig::small(), seed);
    let truth = &topo.ground_truth.relationships;
    let (true_c2p, true_p2p, _) = truth.counts();
    println!("ground truth: {true_c2p} c2p links, {true_p2p} p2p links\n");
    println!(
        "{:>5} {:>9} {:>9} {:>11} {:>10} {:>10}",
        "VPs", "c2p PPV", "p2p PPV", "links seen", "c2p seen", "p2p seen"
    );
    for vps in [2usize, 5, 10, 20, 40, 80, 160] {
        let sim = simulate(
            &topo,
            &SimConfig {
                vp_selection: VpSelection::Count(vps),
                full_feed_fraction: 0.4,
                anomalies: Default::default(),
                destination_sample: None,
                rib_cap_per_vp: None,
                threads: 0,
                seed,
            },
        );
        let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
        let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
        let r = evaluate_against_truth(&inference.relationships, truth);
        let c2p_seen: usize = r.confusion[0].iter().sum();
        let p2p_seen: usize = r.confusion[1].iter().sum();
        println!(
            "{:>5} {:>8.1}% {:>8.1}% {:>10.1}% {:>9.1}% {:>9.1}%",
            vps,
            100.0 * r.c2p_ppv(),
            100.0 * r.p2p_ppv(),
            100.0 * (r.c2p.1 + r.p2p.1) as f64 / truth.len() as f64,
            100.0 * c2p_seen as f64 / true_c2p.max(1) as f64,
            100.0 * p2p_seen as f64 / true_p2p.max(1) as f64,
        );
    }
    println!(
        "\nexpected shape (paper): c2p coverage saturates with few VPs; \
         p2p coverage keeps climbing — most peering stays invisible to \
         any fixed collector set."
    );
}
