//! # asrank — facade crate
//!
//! One-stop re-export of the `asrank` workspace: a Rust reproduction of
//! *"AS Relationships, Customer Cones, and Validation"* (Luckie,
//! Huffaker, Dhamdhere, Giotsas, claffy — ACM IMC 2013).
//!
//! The workspace implements the paper's full system and every substrate
//! it depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`types`] | shared vocabulary: ASNs, prefixes, AS paths, relationships |
//! | [`topology`] | synthetic Internet generator with ground-truth relationships |
//! | [`bgpsim`] | Gao-Rexford policy-routing simulator + vantage points |
//! | [`mrt`] | RFC 6396 MRT codec (TABLE_DUMP_V2, BGP4MP) |
//! | [`core`] | **the paper**: ASRank pipeline, customer cones, AS rank |
//! | [`baselines`] | Gao 2001, Xia-Gao 2004, SARK 2002, degree heuristic |
//! | [`validation`] | emulated validation corpora + PPV metrics |
//!
//! ## Quickstart
//!
//! ```
//! use asrank::prelude::*;
//!
//! // 1. Generate a small Internet with known relationships.
//! let topo = asrank::topology::generate(&asrank::topology::TopologyConfig::tiny(), 42);
//!
//! // 2. Simulate BGP and collect paths at vantage points.
//! let sim = asrank::bgpsim::simulate(&topo, &asrank::bgpsim::SimConfig::defaults(42));
//!
//! // 3. Run the ASRank inference pipeline.
//! let inference = asrank::core::infer(
//!     &sim.paths,
//!     &asrank::core::InferenceConfig::default(),
//! );
//!
//! // 4. Score it against the ground truth.
//! let report = asrank::validation::evaluate_against_truth(
//!     &inference.relationships,
//!     &topo.ground_truth.relationships,
//! );
//! assert!(report.c2p_ppv() > 0.9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Shared vocabulary types (re-export of `asrank-types`).
pub use asrank_types as types;

/// Synthetic topology generation (re-export of `as-topology-gen`).
pub use as_topology_gen as topology;

/// BGP policy-routing simulation (re-export of `bgp-sim`).
pub use bgp_sim as bgpsim;

/// MRT wire format (re-export of `mrt-codec`).
pub use mrt_codec as mrt;

/// The ASRank algorithm, cones, and ranking (re-export of `asrank-core`).
pub use asrank_core as core;

/// Baseline inference algorithms (re-export of `asrank-baselines`).
pub use asrank_baselines as baselines;

/// Validation corpora and metrics (re-export of `asrank-validation`).
pub use asrank_validation as validation;

/// Convenience prelude spanning the whole workspace.
pub mod prelude {
    pub use asrank_core::pipeline::{infer, Inference, InferenceConfig};
    pub use asrank_core::{rank_ases, ConeSets, CustomerCones};
    pub use asrank_types::prelude::*;
    pub use asrank_validation::{evaluate_against_truth, GroundTruthReport};
}
