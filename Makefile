# Build/verify/bench entry points for the ASRank reproduction.

CARGO ?= cargo
# Absolute: cargo runs bench binaries with cwd at the package root, not
# the workspace root, so a relative path would scatter the lines files.
BENCH_LINES := $(CURDIR)/target/criterion-lines.json
BENCH_OUT ?= BENCH.json
# The benches wired into the perf snapshot (the remaining benches —
# clique, mrt, baselines, trie, stability — run via `cargo bench` as usual).
BENCHES := cones sanitize pipeline propagation ingest warm_vs_cold serve scale delta

.PHONY: all build test test-engine lint lint-strict audit verify bench bench-cones bench-ingest bench-serve bench-scale bench-tenx bench-delta profile-scale serve-smoke stage-report clean

all: build

# --workspace: the root manifest is itself a package, so a bare
# `cargo build` would skip sibling bins (notably the asrank CLI) and
# leave stale binaries under target/release.
build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test --workspace

# Staged-engine acceptance: property tests pinning the memoized stage
# graph to the monolithic pipeline (bit-identical inference at both
# parallelism levels and under every ablation), plus the cache
# invalidation/reuse counters.
test-engine:
	$(CARGO) test -p asrank-core --test engine_equivalence
	$(CARGO) test -p asrank-core engine::

# Source-level determinism/robustness checks: the file-local rules
# L001–L005 plus the cross-file semantic passes L006–L009 (fingerprint
# coverage, unsafe/SAFETY contracts, atomics pairing, codec kind
# exhaustiveness). Exit 1 on any violation; annotate intentional
# exceptions with
#   // lint: allow(<slug>, <reason>)
lint:
	$(CARGO) run --release -p asrank-lint -- --root $(CURDIR)

# Everything `lint` checks, plus the L000 audit of the annotations
# themselves: every allow must name a known slug and carry a reason.
# This is the gate `verify` runs.
lint-strict:
	$(CARGO) run --release -p asrank-lint -- --root $(CURDIR) --strict

# Semantic invariant audit over a small end-to-end fixture: generate →
# simulate → infer, then grade the inferred relationships (CSR shape,
# clique p2p, cycles, cone containment/agreement, valley-freeness).
# Seed 9 infers valley-free on the current generator stream (the tiny
# 8-VP audit fixture is quality-sensitive: many seeds exceed the 5%
# valley threshold on visibility alone; re-scan if the stream changes —
# kept in lockstep with cli/tests/toolchain.rs).
audit: build
	@tmp=$$(mktemp -d); \
	./target/release/asrank generate --scale tiny --seed 9 --out $$tmp/topo && \
	./target/release/asrank simulate --topo $$tmp/topo --vps 8 --seed 9 --out $$tmp/rib.mrt && \
	./target/release/asrank infer --rib $$tmp/rib.mrt --out $$tmp/as-rel.txt && \
	./target/release/asrank audit --rels $$tmp/as-rel.txt --rib $$tmp/rib.mrt; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# The full pre-merge gate: compile, test (workspace tests include the
# engine-equivalence suite; test-engine re-runs it explicitly so a
# failure is named in the gate output), strict source lint (all nine
# rules + the annotation audit), semantic audit.
verify: build test test-engine lint-strict audit

# Run the wired criterion benches with JSON-line capture, then assemble
# the lines into a single $(BENCH_OUT) snapshot (medians + derived
# speedup ratios). Override the output name per PR:
#   make bench BENCH_OUT=BENCH_PR1.json
bench:
	mkdir -p target
	rm -f $(BENCH_LINES)
	for b in $(BENCHES); do \
		CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench $$b || exit 1; \
	done
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)

# Cone benches only, gated: assemble a fresh snapshot from the `cones`
# group and diff its derived speedup ratios against the PR1 baseline,
# failing if the recursive-cone speedup regresses below 4.0x.
bench-cones:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench cones
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR1.json

# Ingest + cache benches only, gated: MRT decode MB/s (streaming reader
# vs the parallel byte-range reader) and the warm-vs-cold full pipeline,
# checked against the PR5 acceptance floors (parallel >= 2.0x at 4
# threads, warm >= 5.0x over cold).
bench-ingest:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench ingest
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench warm_vs_cold
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR5.json

# Serve-tier bench only, gated: zero-copy mapped query rates vs the
# owned-decode baselines plus the mapped-vs-owned peak-RSS comparison,
# checked against the PR6 acceptance floors (>=1M relationship
# lookups/s, >=500k cone-membership checks/s on one core, mapped peak
# RSS never above owned).
bench-serve:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench serve
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR6.json

# InternetScale tier, gated: cold infer + arena build at 8k/16k/42k
# with the 42k peak RSS measured in a child process, the blocked pair
# merge vs the full-width counting sort at 42k, plus the micro-size
# cone/pipeline benches so the PR5 floors and the elems/sec trajectory
# are checked in the same snapshot. Acceptance (PR8): blocked merge
# >= 1.3x, 42k RSS under the 8 GiB ceiling, trajectories within 70% of
# the baseline where the baseline has the tier (new tiers warn only).
# Micro benches run BEFORE the 42k tier: the heavy tier's sustained
# load depresses whatever runs after it by ~30% on this host (thermal
# / memory pressure), which would fail the micro floors spuriously.
bench-scale:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench pipeline
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench cones
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench scale
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR5.json

# The tenx tier (~400k ASes), gated: the scale bench with
# ASRANK_SCALE_TENX=1 also records infer/tenx, arena_build/tenx, and
# the tenx child-process peak RSS. Acceptance (PR10): the tenx cold
# infer retains >= 0.5x the 42k kelems/s and peaks under the 8 GiB
# ceiling (scale_rss_headroom gates its worst tier). Skipped with a
# notice when the host has less than 8 GiB of RAM — the tier's working
# set would swap and the numbers would be fiction.
bench-tenx:
	@mem_kb=$$(awk '/MemTotal/ {print $$2}' /proc/meminfo 2>/dev/null || echo 0); \
	if [ "$$mem_kb" -lt 8388608 ]; then \
	  echo "bench-tenx: skipped (host has $$mem_kb kB RAM, tier needs 8 GiB)"; exit 0; \
	fi; \
	mkdir -p target && rm -f $(BENCH_LINES) && \
	CRITERION_JSON=$(BENCH_LINES) ASRANK_SCALE_TENX=1 $(CARGO) bench -p asrank-bench --bench scale && \
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench delta && \
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT) && \
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR9.json

# Per-stage wall_ns share table for one scale tier: runs the staged
# engine under `report stage-report` and prints each stage's share of
# the engine total — the profile that directed the PR10 tenx work.
#   make profile-scale [SCALE=tiny|small|medium|internet|tenx] [SEED=42]
profile-scale:
	@$(CARGO) run --release -p asrank-bench --bin report -- stage-report --scale $(SCALE) --seed $(SEED) \
	| awk '/"stage":/ { \
	    match($$0, /"stage": "[^"]*"/); s = substr($$0, RSTART + 10, RLENGTH - 11); \
	    match($$0, /"wall_ns": [0-9]+/); w = substr($$0, RSTART + 11, RLENGTH - 11) + 0; \
	    ns[s] = w; total += w } \
	  END { \
	    printf "%-22s %10s %7s\n", "stage", "wall_ms", "share"; \
	    sort = "sort -k2 -rn"; \
	    for (s in ns) printf "%-22s %10.1f %6.1f%%\n", s, ns[s] / 1e6, 100 * ns[s] / total | sort; \
	    close(sort); \
	    printf "%-22s %10.1f\n", "engine total", total / 1e6 }'

# Incremental tier, gated: delta refresh after 1%/5%/20% churn batches
# vs the cold pipeline at the 8k tier. Acceptance (PR9): the
# multiplicity-preserving 1%-churn refresh must cost at most 10% of a
# cold run (delta_over_cold_ratio/1pct <= 0.10). PR10 tightened the
# structural-churn bound: the 20% mixed-churn refresh must stay at or
# under a cold rebuild (delta_over_cold_ratio/20pct <= 1.0); 5% stays
# recorded ungated.
bench-delta:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench delta
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR9.json

# End-to-end smoke of the serve tier: warm a cache with the CLI
# (generate -> simulate -> infer --cache-dir), start `asrank serve`,
# drive a query batch through `asrank query --connect`, and cross-check
# the daemon's relationship answers against the as-rel file `infer`
# wrote from the very same cache. The daemon is always killed.
serve-smoke: build
	@tmp=$$(mktemp -d); rc=1; \
	./target/release/asrank generate --scale tiny --seed 7 --out $$tmp/topo && \
	./target/release/asrank simulate --topo $$tmp/topo --vps 8 --seed 7 --out $$tmp/rib.mrt && \
	./target/release/asrank infer --rib $$tmp/rib.mrt --cache-dir $$tmp/cache --out $$tmp/as-rel.txt && \
	{ ./target/release/asrank serve --rib $$tmp/rib.mrt --cache-dir $$tmp/cache --port 46464 --poll-ms 0 & \
	  srv=$$!; sleep 1; \
	  awk -F'|' '/^\#/ { next } { print "rel", $$1, $$2 }' $$tmp/as-rel.txt > $$tmp/queries.txt; \
	  awk -F'|' '/^\#/ { next } $$3 == -1 { print "customer" } $$3 == 0 { print "peer" } $$3 == 2 { print "sibling" }' $$tmp/as-rel.txt > $$tmp/expect.txt; \
	  ./target/release/asrank query --connect 127.0.0.1:46464 < $$tmp/queries.txt > $$tmp/got.txt; \
	  qrc=$$?; kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; \
	  if [ $$qrc -eq 0 ] && [ -s $$tmp/expect.txt ] && cmp -s $$tmp/expect.txt $$tmp/got.txt; then \
	    echo "serve-smoke: $$(wc -l < $$tmp/got.txt) daemon answers match as-rel.txt"; rc=0; \
	  else \
	    echo "serve-smoke: FAIL (query rc=$$qrc)"; diff $$tmp/expect.txt $$tmp/got.txt | head; rc=1; \
	  fi; }; \
	rm -rf $$tmp; exit $$rc

# Per-stage instrumentation over a generated scenario: wall time, item
# counts, artifact sizes, and cache hit/miss counters for every engine
# stage, as deterministic-shape JSON on stdout.
#   make stage-report [SCALE=tiny|small|medium|internet] [SEED=42]
SCALE ?= small
SEED ?= 42
stage-report:
	$(CARGO) run --release -p asrank-bench --bin report -- stage-report --scale $(SCALE) --seed $(SEED)

clean:
	$(CARGO) clean
