# Build/verify/bench entry points for the ASRank reproduction.

CARGO ?= cargo
# Absolute: cargo runs bench binaries with cwd at the package root, not
# the workspace root, so a relative path would scatter the lines files.
BENCH_LINES := $(CURDIR)/target/criterion-lines.json
BENCH_OUT ?= BENCH.json
# The benches wired into the perf snapshot (the remaining benches —
# clique, mrt, baselines, trie, stability — run via `cargo bench` as usual).
BENCHES := cones sanitize pipeline propagation ingest warm_vs_cold

.PHONY: all build test test-engine lint audit verify bench bench-cones bench-ingest stage-report clean

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace

# Staged-engine acceptance: property tests pinning the memoized stage
# graph to the monolithic pipeline (bit-identical inference at both
# parallelism levels and under every ablation), plus the cache
# invalidation/reuse counters.
test-engine:
	$(CARGO) test -p asrank-core --test engine_equivalence
	$(CARGO) test -p asrank-core engine::

# Source-level determinism/robustness checks (L001–L005). Exit 1 on any
# violation; annotate intentional exceptions with
#   // lint: allow(<slug>, <reason>)
lint:
	$(CARGO) run --release -p asrank-lint -- --root $(CURDIR)

# Semantic invariant audit over a small end-to-end fixture: generate →
# simulate → infer, then grade the inferred relationships (CSR shape,
# clique p2p, cycles, cone containment/agreement, valley-freeness).
audit: build
	@tmp=$$(mktemp -d); \
	./target/release/asrank generate --scale tiny --seed 7 --out $$tmp/topo && \
	./target/release/asrank simulate --topo $$tmp/topo --vps 8 --seed 7 --out $$tmp/rib.mrt && \
	./target/release/asrank infer --rib $$tmp/rib.mrt --out $$tmp/as-rel.txt && \
	./target/release/asrank audit --rels $$tmp/as-rel.txt --rib $$tmp/rib.mrt; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# The full pre-merge gate: compile, test (workspace tests include the
# engine-equivalence suite; test-engine re-runs it explicitly so a
# failure is named in the gate output), source lint, semantic audit.
verify: build test test-engine lint audit

# Run the wired criterion benches with JSON-line capture, then assemble
# the lines into a single $(BENCH_OUT) snapshot (medians + derived
# speedup ratios). Override the output name per PR:
#   make bench BENCH_OUT=BENCH_PR1.json
bench:
	mkdir -p target
	rm -f $(BENCH_LINES)
	for b in $(BENCHES); do \
		CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench $$b || exit 1; \
	done
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)

# Cone benches only, gated: assemble a fresh snapshot from the `cones`
# group and diff its derived speedup ratios against the PR1 baseline,
# failing if the recursive-cone speedup regresses below 4.0x.
bench-cones:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench cones
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR1.json

# Ingest + cache benches only, gated: MRT decode MB/s (streaming reader
# vs the parallel byte-range reader) and the warm-vs-cold full pipeline,
# checked against the PR5 acceptance floors (parallel >= 2.0x at 4
# threads, warm >= 5.0x over cold).
bench-ingest:
	mkdir -p target
	rm -f $(BENCH_LINES)
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench ingest
	CRITERION_JSON=$(BENCH_LINES) $(CARGO) bench -p asrank-bench --bench warm_vs_cold
	$(CARGO) run --release -p asrank-bench --bin report -- bench-json $(BENCH_LINES) $(BENCH_OUT)
	$(CARGO) run --release -p asrank-bench --bin report -- bench-check $(BENCH_OUT) BENCH_PR5.json

# Per-stage instrumentation over a generated scenario: wall time, item
# counts, artifact sizes, and cache hit/miss counters for every engine
# stage, as deterministic-shape JSON on stdout.
#   make stage-report [SCALE=tiny|small|medium|internet] [SEED=42]
SCALE ?= small
SEED ?= 42
stage-report:
	$(CARGO) run --release -p asrank-bench --bin report -- stage-report --scale $(SCALE) --seed $(SEED)

clean:
	$(CARGO) clean
