//! Offline stand-in for `criterion`.
//!
//! Implements the measurement surface this workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per sample, the closure is timed over an
//! auto-calibrated iteration batch (targeting ~25 ms per sample, like
//! upstream's warm-up estimate); the reported statistic is the median of
//! `sample_size` samples, which is robust to scheduler noise on shared
//! machines. No plots, no statistical regression testing.
//!
//! Results always print to stdout. When `CRITERION_JSON` names a file,
//! one JSON object per benchmark is appended to it:
//! `{"group":..,"bench":..,"median_ns":..,"mean_ns":..,"samples":..,"throughput":..}`.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `group/function/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Conversion of the things benches pass as benchmark names.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declare per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the batch until one batch costs ≥ ~5 ms, so
        // short benchmarks are not dominated by timer overhead.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.0} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {}  mean {}{}",
            self.name,
            id,
            format_ns(median),
            format_ns(mean),
            rate
        );

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let tp = match self.throughput {
                Some(Throughput::Elements(n)) => format!(r#","throughput_elems":{n}"#),
                Some(Throughput::Bytes(n)) => format!(r#","throughput_bytes":{n}"#),
                None => String::new(),
            };
            let line = format!(
                r#"{{"group":"{}","bench":"{}","median_ns":{:.1},"mean_ns":{:.1},"samples":{},"iters_per_sample":{}{}}}"#,
                self.name,
                id,
                median,
                mean,
                samples_ns.len(),
                iters,
                tp
            );
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(fh, "{line}");
            }
        }
    }
}

/// Times the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); accept and
            // ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", "2x"), &2u64, |b, &k| {
            b.iter(|| (0..100 * k).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
        assert_eq!(format_ns(2_000_000.0), "2.000 ms");
        assert_eq!(format_ns(3.2e9), "3.200 s");
    }
}
