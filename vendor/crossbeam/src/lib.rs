//! Offline stand-in for `crossbeam` (0.8 scoped-thread API).
//!
//! Since Rust 1.63 the standard library ships scoped threads, so the only
//! thing this stand-in has to provide is crossbeam's *shape*: a
//! [`scope`] entry point returning `Result`, and spawn closures that
//! receive the scope again so workers can spawn sub-workers.

#![forbid(unsafe_code)]

use std::any::Any;
use std::thread;

/// Boxed payload of a panicked worker, as crossbeam reports it.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle; cheap to copy into worker closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// A handle to a scoped worker thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker and return its result, or the panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn nested workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Create a scope for spawning borrowing worker threads. All workers are
/// joined before `scope` returns. Unlike crossbeam, a panicking
/// unjoined worker propagates at scope exit (std semantics) rather than
/// surfacing in the `Err` variant — callers joining every handle (the
/// pattern used throughout this workspace) observe identical behavior.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers_and_collects_results() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
