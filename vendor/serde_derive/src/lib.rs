//! Inert `#[derive(Serialize, Deserialize)]` implementations.
//!
//! This workspace builds in offline environments with no crates.io
//! access, so the real `serde_derive` is replaced by this stand-in. The
//! derives expand to nothing: the workspace only uses serde annotations
//! to mark types as serializable for downstream consumers and never
//! invokes a serializer, so marker-level fidelity is sufficient. The
//! `serde` helper attribute is declared so `#[serde(...)]` field/type
//! attributes remain legal.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
