//! Offline stand-in for `rand` (0.10 API surface).
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `random::<f64>()`, `random_range`, and `random_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong for
//! simulation workloads and fully deterministic per seed, which is what
//! the topology generator and simulator require. It is **not** the same
//! stream as crates.io `StdRng` (ChaCha12); seeded outputs differ from
//! upstream rand but are stable within this workspace.

#![forbid(unsafe_code)]

/// Types seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of `Self` over a range type `R`.
///
/// Implemented for `Range` / `RangeInclusive` over the integer types the
/// workspace draws from.
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range, matching upstream rand.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types samplable from the "standard" distribution (`rng.random()`).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for simulation spans ≪ 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::from_le_bytes(rng.next_u64().to_le_bytes()[..core::mem::size_of::<$t>()].try_into().unwrap());
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The random-value surface used by the workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution (`f64` ⇒ uniform `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`; panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(0u8..=255);
            let _ = w;
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honored() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!StdRng::seed_from_u64(2).random_bool(0.0));
        assert!(StdRng::seed_from_u64(2).random_bool(1.1));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.random_range(5u32..5);
    }
}
