//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panicking holder) panics here,
//! which matches how the workspace treats worker panics: fail loudly.

#![forbid(unsafe_code)]

use std::sync;

/// Guard types re-exported under parking_lot's names.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

/// Reader-writer lock with parking_lot's `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
