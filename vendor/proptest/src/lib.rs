//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, the [`proptest!`]
//! test-harness macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case reports its seed and values, but is
//!   not minimized;
//! * deterministic per (test, case-index) seeding, so failures reproduce
//!   without a persistence file (`.proptest-regressions` files are
//!   ignored);
//! * `PROPTEST_CASES` overrides the case count globally.

#![forbid(unsafe_code)]

use rand::prelude::*;
use std::fmt;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Error produced by a failing `prop_assert!`; carries the message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count (`PROPTEST_CASES` env var wins).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the single-core CI budget
        // sane while still exercising real input diversity.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Things accepted as a `vec` length spec: a fixed length, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Convert to inclusive (min, max) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for a `Vec` of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.random_range(self.min..=self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used inside test bodies.
pub mod prop {
    pub use crate::collection;
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        proptest, Just, ProptestConfig, Strategy,
    };
}

/// Derive a stable per-test seed from the test name and case index.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Skip the current case when its precondition does not hold. Unlike
/// upstream there is no global rejection cap; skipped cases simply pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Define property tests. Each function argument is drawn from its
/// strategy once per case; the body runs for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                // Bind each strategy once, under its argument's name.
                $(let $arg = $strat;)+
                for case in 0..config.effective_cases() {
                    let seed = $crate::case_seed(stringify!($name), case);
                    let mut rng = <$crate::TestRng as $crate::TestSeedable>::seed_from_u64(seed);
                    // Shadow the strategy bindings with drawn values.
                    $(let $arg = $arg.generate(&mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}):\n{}",
                            stringify!($name), case, seed, e
                        );
                    }
                }
            }
        )*
    };
}

/// RNG type used by generated tests (exposed for the macro).
pub type TestRng = StdRng;
/// Seeding trait used by generated tests (exposed for the macro).
pub use rand::SeedableRng as TestSeedable;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..50, 50u32..100)
    }

    proptest! {
        #[test]
        fn ranges_hold(v in 3usize..18, w in 0u8..=9) {
            prop_assert!((3..18).contains(&v));
            prop_assert!(w <= 9);
        }

        #[test]
        fn vec_and_map_compose(xs in prop::collection::vec((0u32.., 1u32..4), 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (_, b) in xs {
                prop_assert!((1..4).contains(&b));
            }
        }

        #[test]
        fn mapped_strategies_apply(p in arb_pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((51..150).contains(&p), "sum {} out of range", p);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_is_respected(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::case_seed("t", 3), super::case_seed("t", 3));
        assert_ne!(super::case_seed("t", 3), super::case_seed("t", 4));
        assert_ne!(super::case_seed("a", 0), super::case_seed("b", 0));
    }
}
