//! Offline stand-in for `serde`.
//!
//! The workspace annotates its vocabulary types with
//! `#[derive(Serialize, Deserialize)]` so downstream consumers can wire
//! in real serialization, but nothing in-tree ever drives a serializer.
//! In offline build environments the real crate is unavailable, so this
//! stand-in supplies the two trait names (as markers) and re-exports the
//! inert derives from the sibling `serde_derive` stand-in.
//!
//! Swapping the workspace back to crates.io serde requires only editing
//! `[workspace.dependencies]` in the root manifest; no source changes.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
